#include "stream/checkpoint.h"

#include <cstdio>
#include <cstring>

#include "util/fault.h"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace relborg {

namespace {

constexpr char kMagic[8] = {'R', 'B', 'C', 'K', 'P', 'T', '0', '1'};

}  // namespace

uint64_t Fnv1a64(const uint8_t* data, size_t size) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

void SerializeStreamCheckpointInfo(const StreamCheckpointInfo& info,
                                   ByteSink* sink) {
  sink->U64(info.epochs);
  sink->U64(info.batches);
  sink->U64(info.rows);
  sink->U64(info.ranges);
  sink->U64(info.watermark.size());
  for (size_t w : info.watermark) sink->U64(w);
}

StreamCheckpointInfo DeserializeStreamCheckpointInfo(ByteSource* src) {
  StreamCheckpointInfo info;
  info.epochs = src->U64();
  info.batches = src->U64();
  info.rows = src->U64();
  info.ranges = src->U64();
  const uint64_t n = src->U64();
  // Bound by the remaining payload so a corrupt length cannot drive a
  // multi-gigabyte allocation before the sticky failure flag is checked.
  if (n * sizeof(uint64_t) > src->remaining()) {
    for (uint64_t v = 0; v < n; ++v) src->U64();  // poison the source
    return info;
  }
  info.watermark.resize(n);
  for (uint64_t v = 0; v < n; ++v) {
    info.watermark[v] = static_cast<size_t>(src->U64());
  }
  return info;
}

void SerializeShadowDbPrefix(const ShadowDb& db,
                             const std::vector<size_t>& watermark,
                             ByteSink* sink) {
  const int num_nodes = db.tree().num_nodes();
  sink->U32(static_cast<uint32_t>(num_nodes));
  for (int v = 0; v < num_nodes; ++v) {
    const Relation& rel = db.relation(v);
    const size_t rows = v < static_cast<int>(watermark.size())
                            ? watermark[v]
                            : rel.num_rows();
    const int arity = rel.num_attrs();
    sink->U64(rows);
    sink->U32(static_cast<uint32_t>(arity));
    for (size_t row = 0; row < rows; ++row) {
      for (int a = 0; a < arity; ++a) sink->F64(rel.AsDouble(row, a));
      sink->F64(db.sign(v, row));
    }
  }
}

Status RestoreShadowDbPrefix(ByteSource* src, ShadowDb* db) {
  const int num_nodes = db->tree().num_nodes();
  const uint32_t stored_nodes = src->U32();
  if (!src->ok() || static_cast<int>(stored_nodes) != num_nodes) {
    return Status::InvalidArgument(
        "checkpoint node count does not match the catalog");
  }
  for (int v = 0; v < num_nodes; ++v) {
    if (db->relation(v).num_rows() != 0) {
      return Status::InvalidArgument(
          "RestoreShadowDbPrefix requires a fresh ShadowDb");
    }
    const uint64_t rows = src->U64();
    const uint32_t arity = src->U32();
    if (!src->ok()) return Status::DataLoss("truncated checkpoint prefix");
    if (static_cast<int>(arity) != db->relation(v).num_attrs()) {
      return Status::InvalidArgument(
          "checkpoint arity does not match the catalog schema");
    }
    if (rows * (arity + 1) * sizeof(double) > src->remaining()) {
      return Status::DataLoss("truncated checkpoint prefix");
    }
    std::vector<std::vector<double>> values(rows,
                                            std::vector<double>(arity));
    std::vector<double> signs(rows);
    for (uint64_t row = 0; row < rows; ++row) {
      src->F64Span(values[row].data(), arity);
      signs[row] = src->F64();
    }
    if (!src->ok()) return Status::DataLoss("truncated checkpoint prefix");
    if (rows > 0) {
      IngestChunk chunk =
          db->StageRows(v, std::move(values), std::move(signs), /*first=*/0);
      db->CommitChunk(std::move(chunk));
    }
  }
  return Status::Ok();
}

Status WriteCheckpointFile(const std::string& path, const ByteSink& sink,
                           bool do_fsync, size_t* bytes_out) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Unavailable("cannot open checkpoint tmp file: " + tmp);
  }
  const std::vector<uint8_t>& payload = sink.bytes();
  const uint64_t size = payload.size();
  const uint64_t checksum = Fnv1a64(payload.data(), payload.size());
  bool write_ok =
      std::fwrite(kMagic, 1, sizeof(kMagic), f) == sizeof(kMagic) &&
      std::fwrite(&size, sizeof(size), 1, f) == 1 &&
      std::fwrite(&checksum, sizeof(checksum), 1, f) == 1 &&
      (payload.empty() ||
       std::fwrite(payload.data(), 1, payload.size(), f) == payload.size());
  if (RELBORG_FAULT("stream/pre-checkpoint-fsync")) {
    // Simulated crash between write and flush/rename: the tmp file stays
    // behind (possibly torn in the OS cache) and the previous checkpoint —
    // if any — remains the visible one.
    std::fclose(f);
    return Status::Aborted("injected fault at stream/pre-checkpoint-fsync");
  }
  if (write_ok) write_ok = std::fflush(f) == 0;
#ifndef _WIN32
  if (write_ok && do_fsync) write_ok = ::fsync(fileno(f)) == 0;
#else
  (void)do_fsync;
#endif
  if (std::fclose(f) != 0) write_ok = false;
  if (!write_ok) {
    std::remove(tmp.c_str());
    return Status::Unavailable("short write to checkpoint tmp file: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Unavailable("cannot rename checkpoint into place: " + path);
  }
  if (bytes_out != nullptr) {
    *bytes_out = sizeof(kMagic) + 2 * sizeof(uint64_t) + payload.size();
  }
  return Status::Ok();
}

Status ReadCheckpointFile(const std::string& path,
                          std::vector<uint8_t>* payload) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("no checkpoint file at " + path);
  }
  char magic[sizeof(kMagic)];
  uint64_t size = 0;
  uint64_t checksum = 0;
  if (std::fread(magic, 1, sizeof(magic), f) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    std::fclose(f);
    return Status::DataLoss("bad checkpoint magic in " + path);
  }
  if (std::fread(&size, sizeof(size), 1, f) != 1 ||
      std::fread(&checksum, sizeof(checksum), 1, f) != 1) {
    std::fclose(f);
    return Status::DataLoss("truncated checkpoint header in " + path);
  }
  payload->resize(size);
  const size_t got =
      size == 0 ? 0 : std::fread(payload->data(), 1, size, f);
  // A trailing byte means the file does not match its own framing.
  const bool trailing = std::fgetc(f) != EOF;
  std::fclose(f);
  if (got != size || trailing) {
    return Status::DataLoss("truncated or oversize checkpoint payload in " +
                            path);
  }
  if (Fnv1a64(payload->data(), payload->size()) != checksum) {
    return Status::DataLoss("checkpoint checksum mismatch in " + path);
  }
  return Status::Ok();
}

}  // namespace relborg
