// Asynchronous, pipelined maintenance of IVM update streams with
// epoch-coalesced deltas.
//
// The classic IVM driver loop interleaves three jobs on one thread:
// ingestion (appending rows and maintaining the ShadowDb's join indexes),
// delta computation, and view propagation. The StreamScheduler splits them
// into a three-stage pipeline:
//
//   caller ──Push──▶ [ingress queue] ──▶ assembler ──▶ [epoch queue] ──▶ applier
//            (bounded, blocks:            thread          (bounded)        thread
//             backpressure)
//
//   * The INGRESS QUEUE is bounded by rows; Push blocks while it is full,
//     so a fast producer is throttled to the maintenance rate instead of
//     buffering the whole stream.
//   * The ASSEMBLER coalesces batches into EPOCHS: all of an epoch's
//     batches for one node merge into a single contiguous row range (the
//     shadow relations are per-node, so interleaved arrivals still land
//     contiguously), carrying per-row multiplicity signs so insert and
//     delete batches coalesce into the same range. It also STAGES the
//     ingestion work off the maintenance thread: packed child-edge keys
//     are grouped into per-key index fragments with precomputed absolute
//     row ids (ShadowDb::StageRows), leaving only bulk splices for the
//     applier. An epoch seals once it holds epoch_rows rows or
//     epoch_batches batches — a pure function of the batch sequence,
//     never of timing.
//   * The APPLIER commits and maintains epochs strictly in order. Within
//     an epoch, ranges run in canonical order — deepest view group first
//     (IndependentViewGroups), ascending node id within a group. Because
//     same-group nodes are never ancestor/descendant, strategies exposing
//     ApplyGroup (CovarFivm) compute the group's deltas concurrently over
//     the ExecContext and only serialize the propagations; strategies
//     without it (HigherOrderIvm, FirstOrderIvm) get commit/apply in
//     lockstep per range, each free to parallelize internally.
//
// DETERMINISM: epoch composition and application order are pure functions
// of (stream, options), and every delta is folded with the thread-count-
// independent partitioning of core/exec_policy.h, so the scheduler's
// result is BIT-IDENTICAL to ReplayStream (the same epochs applied
// serially on the caller's thread) for any ExecPolicy thread count — the
// queues and threads change when work happens, never what is summed in
// which order. With epoch_batches == 1 every batch is its own epoch and
// both are in turn bit-identical to the classic append-then-ApplyBatch
// loop over the original stream. Epoch coalescing folds same-key rows of
// an epoch into one delta payload before propagation; ring addition makes
// that exact (deletions cancel inserts inside the epoch), though the
// coalesced fold is a different floating-point summation order than
// per-batch replay, equal to it only up to rounding.
//
// Timing-dependent values (queue high-water marks, per-epoch latency) are
// surfaced in StreamStats for observability; the structural counters
// (epochs, ranges, rows) are deterministic.
//
// While a scheduler is live, the ShadowDb and the strategy belong to the
// pipeline: the caller must not touch either until Finish() returns.
#ifndef RELBORG_STREAM_STREAM_SCHEDULER_H_
#define RELBORG_STREAM_STREAM_SCHEDULER_H_

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "ivm/shadow_db.h"
#include "ivm/update_stream.h"
#include "ivm/view_tree.h"
#include "util/check.h"
#include "util/timer.h"

namespace relborg {

struct StreamOptions {
  // Epoch sealing bounds: an epoch seals once it holds >= epoch_rows rows
  // or >= epoch_batches batches, whichever comes first. Pure functions of
  // the batch sequence, so epoch composition never depends on timing.
  // epoch_batches == 1 disables coalescing (one batch per epoch).
  size_t epoch_rows = 8192;
  size_t epoch_batches = 64;
  // Backpressure bounds: Push blocks while the ingress queue holds
  // >= max_queued_rows rows; the assembler blocks while
  // >= max_queued_epochs sealed epochs await application.
  size_t max_queued_rows = 1 << 16;
  size_t max_queued_epochs = 4;
};

struct StreamStats {
  // Deterministic structural counters.
  size_t batches = 0;  // source batches consumed
  size_t rows = 0;     // rows across those batches
  size_t epochs = 0;   // sealed epochs applied
  size_t ranges = 0;   // coalesced per-node ranges applied
  // Timing (observability only; never affects results).
  double apply_seconds = 0;  // wall time committing + maintaining epochs
  double epoch_latency_mean_seconds = 0;  // epoch sealed -> applied
  double epoch_latency_max_seconds = 0;
  size_t ingress_high_water_rows = 0;
  size_t epoch_queue_high_water = 0;
};

// One coalesced node-range of an epoch: the staged ingestion chunk plus
// the node's view-group index (0 = deepest group; the root group is last).
struct StreamRange {
  int group = 0;
  IngestChunk chunk;
};

struct StreamEpoch {
  uint64_t id = 0;
  size_t rows = 0;
  size_t batches = 0;
  // Canonical application order: ascending (group, node).
  std::vector<StreamRange> ranges;
  std::chrono::steady_clock::time_point sealed_at;
};

// Coalesces a batch sequence into epochs and stages their ingestion.
// Single-threaded (the scheduler drives it from the assembler thread;
// ReplayStream from the caller's); reads only the ShadowDb's immutable
// topology after construction.
class EpochAssembler {
 public:
  EpochAssembler(const ShadowDb* db, const StreamOptions& options);

  // Feeds one batch. Returns true when this batch sealed an epoch into
  // *out (the batch itself is part of that epoch; batches never split).
  bool Add(UpdateBatch batch, StreamEpoch* out);

  // Seals the in-progress partial epoch into *out; false if empty.
  bool Flush(StreamEpoch* out);

 private:
  struct Pending {
    int node = -1;
    std::vector<std::vector<double>> rows;
    std::vector<double> signs;
  };

  void Seal(StreamEpoch* out);

  const ShadowDb* db_;
  StreamOptions options_;
  std::vector<int> group_of_;     // node -> view-group index, deepest = 0
  std::vector<size_t> next_row_;  // node -> next absolute row id
  std::vector<int> pending_of_;   // node -> index into pending_, or -1
  std::vector<Pending> pending_;
  size_t cur_rows_ = 0;
  size_t cur_batches_ = 0;
  uint64_t next_epoch_id_ = 0;
};

namespace stream_internal {

// Detects `void Strategy::ApplyGroup(const NodeRowRange*, size_t)` — the
// hook for concurrent maintenance of same-depth ranges.
template <typename Strategy, typename = void>
struct HasApplyGroup : std::false_type {};
template <typename Strategy>
struct HasApplyGroup<Strategy,
                     std::void_t<decltype(std::declval<Strategy&>().ApplyGroup(
                         std::declval<const NodeRowRange*>(), size_t{0}))>>
    : std::true_type {};

// Minimal bounded MPSC channel: Push blocks while `capacity` worth of
// weight is queued (backpressure), Pop blocks until an item arrives or the
// channel closes empty.
template <typename T>
class BoundedChannel {
 public:
  explicit BoundedChannel(size_t capacity)
      : capacity_(std::max<size_t>(1, capacity)) {}

  // Returns false (item dropped) iff the channel is closed.
  bool Push(T item, size_t weight = 1) {
    std::unique_lock<std::mutex> lock(mu_);
    can_push_.wait(lock, [&] {
      return closed_ || items_.empty() || weight_ + weight <= capacity_;
    });
    if (closed_) return false;
    weight_ += weight;
    high_water_ = std::max(high_water_, weight_);
    items_.emplace_back(std::move(item), weight);
    can_pop_.notify_one();
    return true;
  }

  // Returns false iff the channel is closed and drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    can_pop_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front().first);
    weight_ -= items_.front().second;
    items_.pop_front();
    can_push_.notify_one();
    return true;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    can_push_.notify_all();
    can_pop_.notify_all();
  }

  // Only meaningful once the producing/consuming threads have joined.
  size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::deque<std::pair<T, size_t>> items_;
  size_t capacity_;
  size_t weight_ = 0;
  size_t high_water_ = 0;
  bool closed_ = false;
};

// Commits and maintains one epoch, in canonical range order. Shared by the
// scheduler's applier thread and by ReplayStream, so both paths execute
// the exact same sequence of floating-point operations.
template <typename Strategy>
void ApplyEpoch(ShadowDb* shadow, Strategy* strategy, StreamEpoch* epoch) {
  std::vector<StreamRange>& ranges = epoch->ranges;
  size_t i = 0;
  while (i < ranges.size()) {
    size_t j = i + 1;
    if constexpr (HasApplyGroup<Strategy>::value) {
      // Commit the whole same-depth group up front (group maintenance
      // reads only child VIEWS plus the group's own rows, and propagation
      // reads strictly shallower — not yet committed — relations), then
      // let the strategy maintain the group's ranges concurrently.
      while (j < ranges.size() && ranges[j].group == ranges[i].group) ++j;
      std::vector<NodeRowRange> group;
      group.reserve(j - i);
      for (size_t k = i; k < j; ++k) {
        IngestChunk& chunk = ranges[k].chunk;
        group.push_back({chunk.node, chunk.first, chunk.num_rows()});
        shadow->CommitChunk(std::move(chunk));
      }
      strategy->ApplyGroup(group.data(), group.size());
    } else {
      // Commit/apply in lockstep: a strategy without the group hook may
      // read ANY relation while applying (first-order IVM's delta join
      // re-enumerates the whole database), so no row may become visible
      // before its own range applies.
      IngestChunk& chunk = ranges[i].chunk;
      const NodeRowRange r{chunk.node, chunk.first, chunk.num_rows()};
      shadow->CommitChunk(std::move(chunk));
      strategy->ApplyBatch(r.node, r.first, r.count);
    }
    i = j;
  }
}

}  // namespace stream_internal

// The pipeline. Construct over a ShadowDb + strategy, Push batches (blocks
// on backpressure), then Finish() to flush, drain and join. The strategy's
// result state (e.g. CovarFivm::Current) is valid after Finish.
template <typename Strategy>
class StreamScheduler {
 public:
  StreamScheduler(ShadowDb* shadow, Strategy* strategy,
                  const StreamOptions& options = {})
      : shadow_(shadow),
        strategy_(strategy),
        assembler_(shadow, options),
        ingress_(options.max_queued_rows),
        epochs_(options.max_queued_epochs) {
    assemble_thread_ = std::thread([this] { AssembleLoop(); });
    apply_thread_ = std::thread([this] { ApplyLoop(); });
  }

  ~StreamScheduler() {
    if (!finished_) Finish();
  }

  StreamScheduler(const StreamScheduler&) = delete;
  StreamScheduler& operator=(const StreamScheduler&) = delete;

  // Enqueues one batch; blocks while the ingress queue is full. Empty
  // batches are dropped.
  void Push(UpdateBatch batch) {
    RELBORG_CHECK_MSG(!finished_, "Push after Finish");
    if (batch.rows.empty()) return;
    const size_t weight = batch.rows.size();
    ingress_.Push(std::move(batch), weight);
  }

  // Flushes the partial epoch, drains the pipeline, joins the worker
  // threads and returns the run's stats. Idempotent.
  StreamStats Finish() {
    if (finished_) return stats_;
    finished_ = true;
    ingress_.Close();
    assemble_thread_.join();
    apply_thread_.join();
    stats_.ingress_high_water_rows = ingress_.high_water();
    stats_.epoch_queue_high_water = epochs_.high_water();
    if (stats_.epochs > 0) {
      stats_.epoch_latency_mean_seconds = latency_sum_ / stats_.epochs;
    }
    return stats_;
  }

 private:
  void AssembleLoop() {
    UpdateBatch batch;
    StreamEpoch epoch;
    while (ingress_.Pop(&batch)) {
      stats_.batches++;
      stats_.rows += batch.rows.size();
      if (assembler_.Add(std::move(batch), &epoch)) {
        epochs_.Push(std::move(epoch));
        epoch = StreamEpoch();
      }
    }
    if (assembler_.Flush(&epoch)) epochs_.Push(std::move(epoch));
    epochs_.Close();
  }

  void ApplyLoop() {
    StreamEpoch epoch;
    while (epochs_.Pop(&epoch)) {
      WallTimer timer;
      stats_.epochs++;
      stats_.ranges += epoch.ranges.size();
      stream_internal::ApplyEpoch(shadow_, strategy_, &epoch);
      stats_.apply_seconds += timer.Seconds();
      const double latency =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        epoch.sealed_at)
              .count();
      latency_sum_ += latency;
      stats_.epoch_latency_max_seconds =
          std::max(stats_.epoch_latency_max_seconds, latency);
    }
  }

  ShadowDb* shadow_;
  Strategy* strategy_;
  EpochAssembler assembler_;  // assemble thread only (after construction)
  stream_internal::BoundedChannel<UpdateBatch> ingress_;
  stream_internal::BoundedChannel<StreamEpoch> epochs_;
  // batches/rows are written by the assemble thread, the rest by the apply
  // thread; Finish reads them after joining both, so no field is ever
  // accessed from two live threads.
  StreamStats stats_;
  double latency_sum_ = 0;
  std::thread assemble_thread_;
  std::thread apply_thread_;
  bool finished_ = false;
};

// Streams `stream` through an async scheduler and finishes. The common
// entry point the IVM strategies share.
template <typename Strategy>
StreamStats ApplyStream(ShadowDb* shadow, Strategy* strategy,
                        const std::vector<UpdateBatch>& stream,
                        const StreamOptions& options = {}) {
  StreamScheduler<Strategy> scheduler(shadow, strategy, options);
  for (const UpdateBatch& batch : stream) scheduler.Push(batch);
  return scheduler.Finish();
}

// Serial reference: the same epochs applied on the caller's thread with no
// queues or worker threads. StreamScheduler results are bit-identical to
// this for any thread count; with options.epoch_batches == 1 this is in
// turn bit-identical to the classic append-then-ApplyBatch loop.
template <typename Strategy>
StreamStats ReplayStream(ShadowDb* shadow, Strategy* strategy,
                         const std::vector<UpdateBatch>& stream,
                         const StreamOptions& options = {}) {
  EpochAssembler assembler(shadow, options);
  StreamStats stats;
  StreamEpoch epoch;
  auto apply = [&] {
    WallTimer timer;
    stats.epochs++;
    stats.ranges += epoch.ranges.size();
    stream_internal::ApplyEpoch(shadow, strategy, &epoch);
    stats.apply_seconds += timer.Seconds();
    epoch = StreamEpoch();
  };
  for (const UpdateBatch& batch : stream) {
    if (batch.rows.empty()) continue;
    stats.batches++;
    stats.rows += batch.rows.size();
    if (assembler.Add(batch, &epoch)) apply();
  }
  if (assembler.Flush(&epoch)) apply();
  return stats;
}

}  // namespace relborg

#endif  // RELBORG_STREAM_STREAM_SCHEDULER_H_
