// Asynchronous, pipelined maintenance of IVM update streams with
// epoch-coalesced deltas, watermark-overlapped commits and snapshot-
// validated multi-epoch delta computation.
//
// The classic IVM driver loop interleaves three jobs on one thread:
// ingestion (appending rows and maintaining the ShadowDb's join indexes),
// delta computation, and view propagation. The StreamScheduler splits them
// into a five-stage pipeline:
//
//   caller ──Push──▶ [ingress] ──▶ assembler ──▶ [sealed] ──▶ committer
//            (bounded, blocks:       thread        (bounded)     thread
//             backpressure)                                         │
//   applier ◀── [computed] ◀── compute ◀── [committed] ◀──────────┘
//    thread       (bounded)     thread       (bounded)
//
//   * The INGRESS QUEUE is bounded by rows; Push blocks while it is full,
//     so a fast producer is throttled to the maintenance rate instead of
//     buffering the whole stream.
//   * The ASSEMBLER coalesces batches into EPOCHS: all of an epoch's
//     batches for one node merge into a single contiguous row range (the
//     shadow relations are per-node, so interleaved arrivals still land
//     contiguously), carrying per-row multiplicity signs so insert and
//     delete batches coalesce into the same range. It also STAGES the
//     ingestion work off the maintenance thread (ShadowDb::StageRows) and
//     attaches each range's VISIBILITY HORIZON — the per-node row
//     watermark of the serial replay at that range's commit point — plus
//     the epoch's maintenance READ SET (range nodes and their ancestors).
//     An epoch seals once it holds epoch_rows rows or epoch_batches
//     batches — a pure function of the batch sequence, never of timing.
//     Batches with zero rows count toward the batch bound (an epoch whose
//     batches were all empty seals with zero ranges and applies as a
//     structural no-op).
//   * The COMMITTER splices sealed epochs' chunks into the ShadowDb
//     (ShadowDb::CommitChunk: column splices, one index probe per distinct
//     key, then the atomic watermark flip) strictly in epoch order — and
//     CONCURRENTLY with the applier's maintenance of EARLIER epochs.
//     Overlap is safe on two independent grounds:
//       - MEMORY: a per-node CommitGate excludes the committer from any
//         node in the epoch read set the applier is currently maintaining
//         (strategies declaring kMaintainReadsAncestorClosure lock only
//         range nodes + ancestors; others — first-order IVM re-enumerates
//         the whole database — lock every node, serializing commits with
//         their maintenance but still overlapping queue/latency gaps).
//       - VISIBILITY: maintenance bounds every ShadowDb read by its
//         epoch's watermark (rows at ids >= the horizon are exactly the
//         rows later epochs spliced early), so results never depend on how
//         far commits ran ahead.
//   * The COMPUTE stage starts epoch N+1's DELTA COMPUTATION while epoch N
//     (or several earlier epochs) is still propagating — the speculative
//     half of the applier's work, pulled off the serial path. For each
//     range of a committed epoch it either:
//       - SPECULATES: computes the range's delta against the CURRENT child
//         views, bounded by per-view version snapshots taken at entry, and
//         records the observed (node, version) pairs. The applier
//         revalidates the versions at the range's serial point; equality
//         means the child views never changed in between, so the
//         precomputed delta is bit-identical to a fresh serial compute
//         (deterministic partitioned folds) and propagation proceeds from
//         it directly — a SPECULATION HIT. On a mismatch the applier
//         recomputes serially (a MISS; correctness never depends on the
//         speculation, only latency does).
//       - STAGES PROBES: when the range's probe set (its node's children)
//         intersects the write closure of an epoch still in flight — an
//         earlier epoch handed downstream but not yet maintained, or an
//         earlier range of the same epoch — a speculated delta would be
//         invalidated with certainty, so the stage packs the range's
//         child-view hash keys instead (the other half of the scan's
//         per-row work) and the serial recompute consumes them.
//     Safety mirrors the committer's two-mechanism design:
//       - MEMORY: the compute thread holds the per-node CommitGate (as a
//         second maintain-side holder) while reading the range's relation
//         rows, and a per-view ViewGate read lock on the range's children
//         while probing their views; the applier write-locks exactly the
//         view being folded into (never the read-only upward scan between
//         folds). Acquisition is CommitGate before ViewGate everywhere,
//         readers acquire all-or-nothing and never wait while holding, and
//         each side is a single thread — deadlock-free.
//       - VISIBILITY: every speculative probe is bounded by the child's
//         snapshot, and the applier accepts a speculated delta only when
//         the child versions are unchanged — version equality implies
//         state identity, which implies bit-identity.
//     StreamOptions.overlap_compute = false (or overlap_commits = false,
//     whose serialized schedule commits rows too late for the compute
//     stage to read them) turns the stage into a pure forwarder — the PR-5
//     schedule. Strategies without the speculative API (FirstOrderIvm's
//     delta join reads the whole database, so every epoch's write set
//     intersects every probe set) are forwarded untouched as well and keep
//     the serial schedule; stats report speculated_ranges == 0 for them.
//   * The APPLIER maintains computed epochs strictly in order. Within an
//     epoch, ranges run in canonical order — deepest view group first
//     (IndependentViewGroups), ascending node id within a group. Because
//     same-group nodes are never ancestor/descendant, strategies exposing
//     ApplyGroup (CovarFivm) compute the group's deltas concurrently over
//     the ExecContext and only serialize the propagations; strategies
//     without it (HigherOrderIvm, FirstOrderIvm) get per-range maintenance
//     under per-range watermarks, each free to parallelize internally.
//     Speculated group ranges are validated (and misses recomputed) for
//     the WHOLE group before any of the group propagates, matching
//     ApplyGroup's compute-all-then-apply-all shape exactly.
//
// DETERMINISM: epoch composition, application order and per-range
// watermarks are pure functions of (stream, options); every delta is
// folded with the thread-count-independent partitioning of
// core/exec_policy.h; and every maintenance read is bounded by its epoch's
// watermark, so the scheduler's result is BIT-IDENTICAL to ReplayStream
// (the same epochs committed and maintained serially on the caller's
// thread) for any ExecPolicy thread count, any commit run-ahead and any
// compute run-ahead — the queues, threads, the committer's lead and the
// speculation hit rate change when work happens, never what is read or
// summed in which order. With epoch_batches == 1 every batch is its own
// epoch and both are in turn bit-identical to the classic
// append-then-ApplyBatch loop over the original stream. Epoch coalescing
// folds same-key rows of an epoch into one delta payload before
// propagation; ring addition makes that exact (deletions cancel inserts
// inside the epoch), though the coalesced fold is a different
// floating-point summation order than per-batch replay, equal to it only
// up to rounding.
//
// Timing-dependent values (queue high-water marks, per-epoch latency, gate
// waits, the committer's maximum epoch lead) are surfaced in StreamStats
// for observability; the structural counters (epochs, ranges, rows) are
// deterministic.
//
// While a scheduler is live, the ShadowDb and the strategy belong to the
// pipeline: the caller must not touch either until Finish() returns. Two
// exceptions:
//   * ShadowDb::committed_rows(v) — an atomic gauge that may be polled
//     from any thread (the stress suite samples it live); reading actual
//     ROWS still requires waiting for Finish.
//   * SNAPSHOT READS through the serve layer (serve/snapshot_server.h):
//     an epoch observer registered via SetEpochObserver pins strategy
//     view snapshots at epoch boundaries ON THE APPLIER THREAD, and
//     client threads read those pinned snapshots under the scheduler's
//     view-gate read locks (BeginViewRead/EndViewRead) — excluded from
//     the one view the applier is folding into, never from the committer
//     or the compute stage.
#ifndef RELBORG_STREAM_STREAM_SCHEDULER_H_
#define RELBORG_STREAM_STREAM_SCHEDULER_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/exec_policy.h"
#include "ivm/shadow_db.h"
#include "ivm/update_stream.h"
#include "ivm/view_tree.h"
#include "obs/event.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/checkpoint.h"
#include "stream/stream_metrics.h"
#include "util/check.h"
#include "util/fault.h"
#include "util/status.h"
#include "util/timer.h"

namespace relborg {

struct StreamOptions {
  // Epoch sealing bounds: an epoch seals once it holds >= epoch_rows rows
  // or >= epoch_batches batches, whichever comes first. Pure functions of
  // the batch sequence, so epoch composition never depends on timing.
  // epoch_batches == 1 disables coalescing (one batch per epoch).
  size_t epoch_rows = 8192;
  size_t epoch_batches = 64;
  // Backpressure bounds: Push blocks while the ingress queue holds
  // >= max_queued_rows rows; each of the sealed and committed epoch queues
  // holds at most max_queued_epochs epochs (so commits run at most
  // ~max_queued_epochs epochs ahead of maintenance).
  size_t max_queued_rows = 1 << 16;
  size_t max_queued_epochs = 4;
  // When false, the committer thread forwards epochs untouched and the
  // applier commits each epoch right before maintaining it — the PR-4
  // serialized schedule. Results are bit-identical either way; the toggle
  // exists for differential stress tests and overlap A/B measurements.
  bool overlap_commits = true;
  // When false, the compute thread forwards epochs untouched and every
  // delta is computed at its serial point on the applier thread — the PR-5
  // schedule. Speculation also requires overlap_commits (its rows must be
  // committed before the compute stage can read them) and a strategy with
  // the speculative per-range API. Results are bit-identical either way.
  bool overlap_compute = true;
  // The computed queue's capacity: the compute stage runs at most this
  // many epochs ahead of maintenance.
  size_t max_compute_ahead_epochs = 4;
  // TEST KNOB: speculate even for ranges whose probe set intersects an
  // in-flight epoch's write closure (normally those stage probes instead,
  // since validation would miss with certainty). Forces the
  // validation-miss / serial-recompute / write-gate contention paths that
  // conflict avoidance makes rare. Results are bit-identical either way.
  bool speculate_past_conflicts = false;
  // Ingress validation (docs/ARCHITECTURE.md, "Failure model & recovery"):
  // when on, Push checks every batch against the catalog — node id in
  // range, per-row arity and attribute types, finite values, deletes only
  // retracting live multiplicities — and routes rejected batches to a
  // bounded quarantine instead of letting them reach the pipeline (where
  // they would corrupt views or trip an abort). Off skips the per-row scan
  // for trusted producers; results are identical for valid streams.
  bool validate_ingress = true;
  // Rejected batches kept for DrainQuarantine; older rejects beyond the
  // capacity are dropped (counted in quarantine_dropped_batches). 0 keeps
  // none.
  size_t quarantine_capacity = 64;
  // Stall watchdog: when > 0, a monitor thread dumps queue depths and
  // per-node watermarks to stderr (and counts watchdog_stalls) whenever no
  // stage makes progress for this long while work is queued. Observability
  // only — it never unblocks or kills anything.
  double stall_timeout_seconds = 0;
  // Periodic epoch checkpointing (stream/checkpoint.h); disabled unless
  // both path and every_epochs are set.
  StreamCheckpointOptions checkpoint;
  // Observability (src/obs/). `metrics`: an external registry to register
  // the pipeline's instruments in (so one registry can span scheduler +
  // serve layer); null means the scheduler owns a private registry,
  // reachable via metrics(). `trace`: when set, every stage thread records
  // spans into the recorder's per-thread rings (Chrome-trace exportable);
  // null disables recording entirely — spans cost one thread-local load.
  // Tracing and metrics never affect WHAT the pipeline computes: results
  // stay bit-identical to an uninstrumented run.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
};

struct StreamStats {
  // Deterministic structural counters.
  size_t batches = 0;  // source batches consumed (empty batches included)
  size_t rows = 0;     // rows across those batches
  size_t epochs = 0;   // sealed epochs applied
  size_t ranges = 0;   // coalesced per-node ranges applied
  // Speculative compute counters. speculated/probe-staged are decided on
  // the compute thread; hits/misses are decided on the applier thread at
  // each range's serial point (hits + misses == speculated_ranges after
  // Finish). All are timing-dependent — only their SUMS per range are
  // structural: every range is exactly one of speculated, probe-staged or
  // plain.
  size_t speculated_ranges = 0;   // ranges with a precomputed delta
  size_t speculation_hits = 0;    // ...accepted at the serial point
  size_t speculation_misses = 0;  // ...invalidated and recomputed
  size_t probe_staged_ranges = 0;  // conflicted ranges with staged keys
  // Timing (observability only; never affects results).
  double apply_seconds = 0;   // wall time maintaining epochs (gate wait in)
  double commit_seconds = 0;  // wall time splicing chunks, gate waits out
                              // (booked here in either overlap mode)
  double compute_seconds = 0;  // wall time speculating, gate waits out
  double commit_gate_wait_seconds = 0;    // committer blocked on readers
  double maintain_gate_wait_seconds = 0;  // applier blocked on commits
  double compute_gate_wait_seconds = 0;   // compute blocked on gates
  size_t commit_ahead_max_epochs = 0;  // committer's max lead over applier
  size_t compute_overlap_epochs_max = 0;  // compute's max lead over applier
  double epoch_latency_mean_seconds = 0;  // epoch sealed -> applied
  double epoch_latency_max_seconds = 0;
  size_t ingress_high_water_rows = 0;
  size_t epoch_queue_high_water = 0;
  // Ingress robustness counters (producer side).
  size_t rejected_batches = 0;   // failed validation, never entered pipeline
  size_t rejected_rows = 0;      // rows across rejected batches
  size_t quarantined_batches = 0;       // rejected AND retained for drain
  size_t quarantine_dropped_batches = 0;  // rejected, quarantine was full
  size_t dropped_batches = 0;    // pushed after Finish or after a failure
  size_t try_push_timeouts = 0;  // TryPush deadlines that expired
  // Watchdog + checkpoint observability.
  size_t watchdog_stalls = 0;       // no-progress intervals detected
  size_t checkpoints_written = 0;   // complete checkpoint files renamed in
  size_t checkpoint_bytes = 0;      // file bytes across them
  double checkpoint_seconds = 0;    // wall time serializing + writing
};

namespace stream_internal {

// StreamStats is a PROJECTION of the metrics registry: the scheduler only
// ever updates instruments, and this derivation is the only producer of the
// flat struct — the two cannot disagree. Counter values are integer-valued
// doubles (exact); the seconds fields are the histogram sums, accumulated by
// a single writer in the same order as the `+=` fields they replaced.
inline StreamStats StreamMetrics::Derive() const {
  StreamStats s;
  s.batches = static_cast<size_t>(batches->Value());
  s.rows = static_cast<size_t>(rows->Value());
  s.epochs = static_cast<size_t>(epochs->Value());
  s.ranges = static_cast<size_t>(ranges->Value());
  s.speculated_ranges = static_cast<size_t>(speculated_ranges->Value());
  s.speculation_hits = static_cast<size_t>(speculation_hits->Value());
  s.speculation_misses = static_cast<size_t>(speculation_misses->Value());
  s.probe_staged_ranges = static_cast<size_t>(probe_staged_ranges->Value());
  s.apply_seconds = apply_seconds->Sum();
  s.commit_seconds = commit_seconds->Sum();
  s.compute_seconds = compute_seconds->Sum();
  s.commit_gate_wait_seconds = commit_gate_wait->Sum();
  s.maintain_gate_wait_seconds = maintain_gate_wait->Sum();
  s.compute_gate_wait_seconds = compute_gate_wait->Sum();
  s.commit_ahead_max_epochs = static_cast<size_t>(commit_ahead_max->Value());
  s.compute_overlap_epochs_max =
      static_cast<size_t>(compute_overlap_max->Value());
  // Mean over ALL epochs counted (checkpoint resume seeds the epoch
  // counter), matching the pre-registry semantics.
  s.epoch_latency_mean_seconds =
      s.epochs > 0 ? epoch_latency->Sum() / static_cast<double>(s.epochs) : 0;
  s.epoch_latency_max_seconds = epoch_latency_max->Value();
  s.ingress_high_water_rows = static_cast<size_t>(ingress_high_water->Value());
  s.epoch_queue_high_water =
      static_cast<size_t>(epoch_queue_high_water->Value());
  s.rejected_batches = static_cast<size_t>(rejected_batches->Value());
  s.rejected_rows = static_cast<size_t>(rejected_rows->Value());
  s.quarantined_batches = static_cast<size_t>(quarantined_batches->Value());
  s.quarantine_dropped_batches =
      static_cast<size_t>(quarantine_dropped_batches->Value());
  s.dropped_batches = static_cast<size_t>(dropped_batches->Value());
  s.try_push_timeouts = static_cast<size_t>(try_push_timeouts->Value());
  s.watchdog_stalls = static_cast<size_t>(watchdog_stalls->Value());
  s.checkpoints_written = static_cast<size_t>(checkpoint_write->Count());
  s.checkpoint_bytes = static_cast<size_t>(checkpoint_bytes->Value());
  s.checkpoint_seconds = checkpoint_write->Sum();
  return s;
}

}  // namespace stream_internal

// One coalesced node-range of an epoch: the staged ingestion chunk, the
// node's view-group index (0 = deepest group; the root group is last), and
// the visibility horizon of the serial replay right after this range's
// commit — maintenance of the range bounds every per-node read by it.
struct StreamRange {
  int group = 0;
  IngestChunk chunk;
  std::vector<size_t> visible;  // per node: rows visible after this commit
};

struct StreamEpoch {
  uint64_t id = 0;
  size_t rows = 0;
  size_t batches = 0;
  // Canonical application order: ascending (group, node).
  std::vector<StreamRange> ranges;
  // Maintenance read set (per node): range nodes and their ancestors. The
  // CommitGate keeps the committer out of these nodes while the epoch is
  // being maintained by a strategy that reads only the ancestor closure.
  std::vector<uint8_t> reads;
  std::chrono::steady_clock::time_point sealed_at;
};

// Coalesces a batch sequence into epochs and stages their ingestion.
// Single-threaded (the scheduler drives it from the assembler thread;
// ReplayStream from the caller's); reads only the ShadowDb's immutable
// topology after construction.
class EpochAssembler {
 public:
  EpochAssembler(const ShadowDb* db, const StreamOptions& options);

  // Feeds one batch. Returns true when this batch sealed an epoch into
  // *out (the batch itself is part of that epoch; batches never split).
  // Zero-row batches carry no ranges but count toward the batch bound.
  bool Add(UpdateBatch batch, StreamEpoch* out);

  // Seals the in-progress partial epoch into *out; false if no batch is
  // pending (an all-empty-batch tail still seals a zero-range epoch).
  bool Flush(StreamEpoch* out);

  // Checkpoint resume: continues epoch numbering from a checkpoint
  // boundary. The row cursors need no adjustment — the constructor
  // snapshots the restored relations' sizes, which at a checkpoint
  // boundary ARE the per-node watermarks. Call before the first Add.
  void ResumeAt(uint64_t next_epoch_id) { next_epoch_id_ = next_epoch_id; }

 private:
  struct Pending {
    int node = -1;
    std::vector<std::vector<double>> rows;
    std::vector<double> signs;
  };

  void Seal(StreamEpoch* out);

  const ShadowDb* db_;
  StreamOptions options_;
  std::vector<int> group_of_;     // node -> view-group index, deepest = 0
  std::vector<size_t> next_row_;  // node -> next absolute row id
  std::vector<int> pending_of_;   // node -> index into pending_, or -1
  std::vector<Pending> pending_;
  size_t cur_rows_ = 0;
  size_t cur_batches_ = 0;
  uint64_t next_epoch_id_ = 0;
};

namespace stream_internal {

// Detects `void Strategy::ApplyGroup(const NodeRowRange*, size_t,
// const size_t*)` — the hook for concurrent maintenance of same-depth
// ranges under one visibility horizon.
template <typename Strategy, typename = void>
struct HasApplyGroup : std::false_type {};
template <typename Strategy>
struct HasApplyGroup<
    Strategy,
    std::void_t<decltype(std::declval<Strategy&>().ApplyGroup(
        std::declval<const NodeRowRange*>(), size_t{0},
        std::declval<const size_t*>()))>> : std::true_type {};

// Detects `Strategy::kMaintainReadsAncestorClosure == true`: maintenance
// of a range reads only the range's node and its ancestors, so the gate
// can lock just the epoch's read closure. Strategies without the marker
// (first-order IVM reads the whole database) lock every node.
template <typename Strategy, typename = void>
struct ReadsAncestorClosure : std::false_type {};
template <typename Strategy>
struct ReadsAncestorClosure<
    Strategy, std::void_t<decltype(Strategy::kMaintainReadsAncestorClosure)>>
    : std::bool_constant<Strategy::kMaintainReadsAncestorClosure> {};

// Detects the checkpoint API (`Strategy::kCheckpointTag` plus
// SaveCheckpoint / LoadCheckpoint). Strategies without it simply never
// write checkpoints (the option is ignored) and cannot be restored.
template <typename Strategy, typename = void>
struct HasCheckpoint : std::false_type {};
template <typename Strategy>
struct HasCheckpoint<Strategy, std::void_t<decltype(Strategy::kCheckpointTag)>>
    : std::true_type {};

// Detects the speculative per-range compute API (`Strategy::RangeDelta`
// plus ComputeRangeDelta / RangeDeltaValid / ApplyRangeDelta): the hook
// that lets the compute stage evaluate a range's delta ahead of its serial
// point. Strategies without it (FirstOrderIvm) keep the serial schedule.
template <typename Strategy, typename = void>
struct HasSpeculativeCompute : std::false_type {};
template <typename Strategy>
struct HasSpeculativeCompute<Strategy,
                             std::void_t<typename Strategy::RangeDelta>>
    : std::true_type {};

// A committed epoch plus the compute stage's per-range output. The
// non-speculative specialization is a plain wrapper, so one channel type
// serves every strategy.
template <typename Strategy,
          bool kSpec = HasSpeculativeCompute<Strategy>::value>
struct ComputedEpoch {
  StreamEpoch epoch;
};

template <typename Strategy>
struct ComputedEpoch<Strategy, true> {
  struct Range {
    // Exactly one of `speculated` / `probes_staged` is set for a range the
    // compute stage touched; both false means the range passed through
    // (overlap off) and the applier computes it serially from scratch.
    bool speculated = false;
    typename Strategy::RangeDelta delta{};
    // (node, version) of every child view the delta was computed against.
    std::vector<std::pair<int, uint64_t>> observed;
    bool probes_staged = false;
    StagedChildKeys probes;
  };
  StreamEpoch epoch;
  std::vector<Range> ranges;  // parallel to epoch.ranges (empty if untouched)
};

// Packs the child-view hash keys of rows [first, first + count) at `node`
// — bit-identical to what ViewTreeMaintainer's delta scan would compute
// row by row. The rows must already be committed.
inline StagedChildKeys StageChildKeys(const ShadowDb& db, int node,
                                      size_t first, size_t count) {
  const RootedTree& tree = db.tree();
  const std::vector<int>& children = tree.node(node).children;
  StagedChildKeys out;
  out.first = first;
  out.keys.resize(children.size());
  for (size_t ci = 0; ci < children.size(); ++ci) {
    out.keys[ci].reserve(count);
    for (size_t row = first; row < first + count; ++row) {
      out.keys[ci].push_back(tree.RowKeyToChild(node, children[ci], row));
    }
  }
  return out;
}

// Minimal bounded MPSC channel: Push blocks while `capacity` worth of
// weight is queued (backpressure), Pop blocks until an item arrives or the
// channel closes empty.
template <typename T>
class BoundedChannel {
 public:
  explicit BoundedChannel(size_t capacity)
      : capacity_(std::max<size_t>(1, capacity)) {}

  // Returns false (item dropped) iff the channel is closed.
  bool Push(T item, size_t weight = 1) {
    std::unique_lock<std::mutex> lock(mu_);
    can_push_.wait(lock, [&] {
      return closed_ || items_.empty() || weight_ + weight <= capacity_;
    });
    if (closed_) return false;
    weight_ += weight;
    high_water_ = std::max(high_water_, weight_);
    items_.emplace_back(std::move(item), weight);
    can_pop_.notify_one();
    return true;
  }

  enum class TryPushResult { kOk, kTimeout, kClosed };

  // Bounded-wait Push: gives up after `timeout` instead of blocking
  // indefinitely under backpressure. On kTimeout the item is untouched (the
  // caller keeps ownership and may retry).
  TryPushResult TryPush(T* item, size_t weight,
                        std::chrono::nanoseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    const bool ready = can_push_.wait_for(lock, timeout, [&] {
      return closed_ || items_.empty() || weight_ + weight <= capacity_;
    });
    if (!ready) return TryPushResult::kTimeout;
    if (closed_) return TryPushResult::kClosed;
    weight_ += weight;
    high_water_ = std::max(high_water_, weight_);
    items_.emplace_back(std::move(*item), weight);
    can_pop_.notify_one();
    return TryPushResult::kOk;
  }

  // Returns false iff the channel is closed and drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    can_pop_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front().first);
    weight_ -= items_.front().second;
    items_.pop_front();
    can_push_.notify_one();
    return true;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    can_push_.notify_all();
    can_pop_.notify_all();
  }

  // Only meaningful once the producing/consuming threads have joined.
  size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

  // Queued item count right now (watchdog gauge; instantly stale).
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::deque<std::pair<T, size_t>> items_;
  size_t capacity_;
  size_t weight_ = 0;
  size_t high_water_ = 0;
  bool closed_ = false;
};

// Ingress-side batch validation against the catalog. Untrusted producers
// must not be able to reach any RELBORG_CHECK abort (or silently corrupt
// views) with a malformed UpdateBatch, so everything the pipeline assumes
// about a batch is checked HERE, before it enters the ingress queue:
//
//   * node id within the join tree;
//   * batch sign exactly +1 or -1;
//   * every row has the schema's arity, every value is finite, and
//     categorical attributes carry non-negative integral codes within
//     int32 range (Column::AppendCat would otherwise silently truncate in
//     release builds);
//   * a delete batch only retracts rows with live multiplicity — tracked
//     as a per-node multiset of row-content hashes, checked against the
//     batch's own two-pass need counts so the whole batch accepts or
//     rejects atomically (a delete stream that over-retracts would drive
//     multiplicities negative, which every downstream invariant assumes
//     cannot happen).
//
// Check is read-only; Account applies an ACCEPTED batch's effect to the
// live multiset — split so a batch that times out in TryPush after
// validation is never accounted. Single-threaded (the producer thread).
class BatchValidator {
 public:
  struct CheckResult {
    int node = -1;
    bool is_delete = false;
    std::vector<uint64_t> hashes;  // one content hash per row
  };

  // Seeds the live multisets from rows already committed to `db` — the
  // checkpoint-resume case, where the restored prefix's deletes must stay
  // retractable-aware. On a fresh db this is a no-op.
  explicit BatchValidator(const ShadowDb* db)
      : db_(db), live_(db->tree().num_nodes()) {
    for (int v = 0; v < db->tree().num_nodes(); ++v) {
      const Relation& rel = db->relation(v);
      for (size_t row = 0; row < rel.num_rows(); ++row) {
        uint64_t h = kHashSeed;
        for (int a = 0; a < rel.num_attrs(); ++a) {
          h = HashValue(h, rel.AsDouble(row, a));
        }
        h = Clamp(h);
        if (db->sign(v, row) > 0) {
          live_[v][h]++;
        } else if (uint32_t* cnt = live_[v].Find(h)) {
          if (*cnt > 0) --*cnt;
        }
      }
    }
  }

  Status Check(const UpdateBatch& batch, CheckResult* out) const {
    if (batch.rows.empty()) {
      // Zero-row batches are structural no-ops that still count toward
      // epoch sealing (node -1 is their conventional encoding), so they
      // bypass the node/sign checks entirely.
      out->node = -1;
      out->is_delete = false;
      out->hashes.clear();
      return Status::Ok();
    }
    const int num_nodes = db_->tree().num_nodes();
    if (batch.node < 0 || batch.node >= num_nodes) {
      return Status::InvalidArgument("batch node id " +
                                     std::to_string(batch.node) +
                                     " out of range");
    }
    if (batch.sign != 1.0 && batch.sign != -1.0) {
      return Status::InvalidArgument("batch sign must be +1 or -1");
    }
    const Relation& rel = db_->relation(batch.node);
    const Schema& schema = rel.schema();
    const size_t arity = static_cast<size_t>(rel.num_attrs());
    out->node = batch.node;
    out->is_delete = batch.sign < 0;
    out->hashes.clear();
    out->hashes.reserve(batch.rows.size());
    for (const std::vector<double>& row : batch.rows) {
      if (row.size() != arity) {
        return Status::InvalidArgument(
            "row arity " + std::to_string(row.size()) + " does not match " +
            "schema arity " + std::to_string(arity));
      }
      uint64_t h = kHashSeed;
      for (size_t a = 0; a < arity; ++a) {
        const double v = row[a];
        if (!std::isfinite(v)) {
          return Status::InvalidArgument("non-finite value in attribute " +
                                         std::to_string(a));
        }
        if (schema.attr(static_cast<int>(a)).type == AttrType::kCategorical &&
            (v < 0 || v > 2147483647.0 || v != std::floor(v))) {
          return Status::InvalidArgument(
              "categorical attribute " + std::to_string(a) +
              " must be a non-negative int32 code");
        }
        h = HashValue(h, v);
      }
      out->hashes.push_back(Clamp(h));
    }
    if (out->is_delete && !out->hashes.empty()) {
      // Two-pass in-batch need counts: the whole batch must be coverable
      // by the CURRENT live multiset (duplicates within the batch need
      // that many live instances), so acceptance is atomic per batch.
      FlatHashMap<uint32_t> needed;
      for (uint64_t h : out->hashes) needed[h]++;
      const FlatHashMap<uint32_t>& live = live_[batch.node];
      Status st;
      needed.ForEach([&](uint64_t h, const uint32_t& n) {
        const uint32_t* cnt = live.Find(h);
        if ((cnt == nullptr ? 0u : *cnt) < n && st.ok()) {
          st = Status::InvalidArgument(
              "delete batch retracts a row with no live multiplicity");
        }
      });
      if (!st.ok()) return st;
    }
    return Status::Ok();
  }

  // Applies an accepted batch's multiplicity effect. Call exactly once per
  // batch, only after it was successfully enqueued.
  void Account(const CheckResult& chk) {
    if (chk.node < 0) return;  // zero-row no-op batch
    FlatHashMap<uint32_t>& live = live_[chk.node];
    for (uint64_t h : chk.hashes) {
      if (chk.is_delete) {
        --live[h];  // Check proved coverage, so the count is positive
      } else {
        ++live[h];
      }
    }
  }

 private:
  static constexpr uint64_t kHashSeed = 0xcbf29ce484222325ULL;

  // FNV-1a over the value's IEEE bit pattern — exact-content identity
  // (matches the committed row exactly: categorical codes round-trip the
  // double cast bit-for-bit).
  static uint64_t HashValue(uint64_t h, double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (i * 8)) & 0xff;
      h *= 0x100000001b3ULL;
    }
    return h;
  }

  // FlatHashMap reserves ~0 as its empty sentinel.
  static uint64_t Clamp(uint64_t h) { return h == kEmptyKey ? 0 : h; }

  const ShadowDb* db_;
  std::vector<FlatHashMap<uint32_t>> live_;  // per node: content hash ->
                                             // live multiplicity
};

// Node-granular exclusion between the committer (splicing one chunk at a
// time) and the maintain side — the applier (maintaining one epoch's read
// set at a time) AND the compute thread (reading one range's relation rows
// at a time), which may hold overlapping node sets concurrently, so the
// maintain side is COUNTED per node rather than flagged. The flips run
// under one mutex, so every splice of a node happens-before any
// maintenance read of it and vice versa — the only cross-thread
// synchronization the overlapped ShadowDb needs. Deadlock-free by
// construction: neither side ever waits while holding a count the other
// side's predicate tests (the maintain side waits BEFORE raising its
// counts and never blocks other maintain-side holders; the committer holds
// busy only across one finite splice).
class CommitGate {
 public:
  explicit CommitGate(size_t num_nodes)
      : busy_(num_nodes, 0), active_(num_nodes, 0) {}

  // Committer side: blocks while any maintain-side holder is reading
  // `node`. Returns seconds spent blocked.
  double BeginCommit(int node) {
    WallTimer timer;
    std::unique_lock<std::mutex> lock(mu_);
    can_commit_.wait(lock, [&] { return active_[node] == 0; });
    busy_[node] = 1;
    return timer.Seconds();
  }

  void EndCommit(int node) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      busy_[node] = 0;
    }
    can_maintain_.notify_all();
  }

  // Applier side: blocks while the committer is splicing any node of
  // `reads` (1 = the epoch's maintenance may read that node), then locks
  // those nodes against commits. Returns seconds spent blocked.
  double BeginMaintain(const std::vector<uint8_t>& reads) {
    WallTimer timer;
    std::unique_lock<std::mutex> lock(mu_);
    can_maintain_.wait(lock, [&] {
      for (size_t v = 0; v < reads.size(); ++v) {
        if (reads[v] && busy_[v]) return false;
      }
      return true;
    });
    for (size_t v = 0; v < reads.size(); ++v) {
      if (reads[v]) ++active_[v];
    }
    return timer.Seconds();
  }

  void EndMaintain(const std::vector<uint8_t>& reads) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t v = 0; v < reads.size(); ++v) {
        if (reads[v]) --active_[v];
      }
    }
    can_commit_.notify_all();
  }

  // Compute side: same contract for a single node (the compute stage only
  // ever reads the range's own relation rows; child VIEWS are strategy
  // state guarded by the ViewGate, not ShadowDb state).
  double BeginMaintainNode(int node) {
    WallTimer timer;
    std::unique_lock<std::mutex> lock(mu_);
    can_maintain_.wait(lock, [&] { return !busy_[node]; });
    ++active_[node];
    return timer.Seconds();
  }

  void EndMaintainNode(int node) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_[node];
    }
    can_commit_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable can_commit_;
  std::condition_variable can_maintain_;
  std::vector<uint8_t> busy_;     // committer splicing this node
  std::vector<uint32_t> active_;  // maintain-side holders reading this node
};

// Per-view reader/writer exclusion between the compute thread (probing
// child views speculatively) and the applier (folding deltas into views
// during propagation). The reader acquires its whole probe set atomically
// and never waits while holding; the writer marks intent first (blocking
// new readers) and waits for that one view's readers to drain — with one
// reader party and one writer party, no cycle can form. Writer counts
// allow the coarse path-locking pattern (HigherOrderIvm locks a whole root
// path around its parallel per-maintainer propagation).
class ViewGate : public ViewWriteGate {
 public:
  explicit ViewGate(size_t num_nodes)
      : readers_(num_nodes, 0), writers_(num_nodes, 0) {}

  // Reader side: blocks until NO view of `mask` is write-locked, then
  // read-locks all of them at once. Returns seconds spent blocked.
  double BeginRead(const std::vector<uint8_t>& mask) {
    WallTimer timer;
    std::unique_lock<std::mutex> lock(mu_);
    can_read_.wait(lock, [&] {
      for (size_t v = 0; v < mask.size(); ++v) {
        if (mask[v] && writers_[v] > 0) return false;
      }
      return true;
    });
    for (size_t v = 0; v < mask.size(); ++v) {
      if (mask[v]) ++readers_[v];
    }
    return timer.Seconds();
  }

  void EndRead(const std::vector<uint8_t>& mask) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t v = 0; v < mask.size(); ++v) {
        if (mask[v]) --readers_[v];
      }
    }
    can_write_.notify_all();
  }

  // Writer side (the applier, through the ViewWriteGate interface).
  void LockView(int v) override {
    std::unique_lock<std::mutex> lock(mu_);
    ++writers_[v];  // intent first: new readers of v wait from here on
    can_write_.wait(lock, [&] { return readers_[v] == 0; });
  }

  void UnlockView(int v) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      --writers_[v];
    }
    can_read_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable can_read_;
  std::condition_variable can_write_;
  std::vector<uint32_t> readers_;
  std::vector<uint32_t> writers_;
};

// Commits every range of an epoch in canonical order: the chunk payloads
// are consumed, the range headers (node/first/rows) and watermarks stay
// for maintenance. With a gate, each splice excludes itself from nodes
// under maintenance and adds its blocked time to *gate_wait_seconds.
// Shared by the scheduler's committer thread and by ReplayStream, so both
// paths commit in the exact same order.
inline void CommitEpoch(ShadowDb* shadow, StreamEpoch* epoch,
                        CommitGate* gate = nullptr,
                        double* gate_wait_seconds = nullptr) {
  for (StreamRange& range : epoch->ranges) {
    const int node = range.chunk.node;
    double waited = 0;
    if (gate != nullptr) waited = gate->BeginCommit(node);
    shadow->CommitChunk(std::move(range.chunk));
    if (gate != nullptr) gate->EndCommit(node);
    if (gate_wait_seconds != nullptr) *gate_wait_seconds += waited;
  }
}

// Maintains one already-committed epoch, in canonical range order, each
// read bounded by the range's (or group's) visibility horizon. Shared by
// the scheduler's applier thread and by ReplayStream, so both paths
// execute the exact same sequence of floating-point operations — the
// horizons only ever exclude rows that do not exist yet in the serial
// replay.
template <typename Strategy>
void MaintainEpoch(Strategy* strategy, StreamEpoch* epoch) {
  std::vector<StreamRange>& ranges = epoch->ranges;
  size_t i = 0;
  while (i < ranges.size()) {
    size_t j = i + 1;
    if constexpr (HasApplyGroup<Strategy>::value) {
      // Maintain the whole same-depth group at once (group maintenance
      // reads only child VIEWS plus the group's own rows, and propagation
      // reads strictly shallower relations) under the group's horizon:
      // visibility after the group's LAST commit, which is exactly the
      // committed state at this point of the serial replay.
      while (j < ranges.size() && ranges[j].group == ranges[i].group) ++j;
      std::vector<NodeRowRange> group;
      group.reserve(j - i);
      for (size_t k = i; k < j; ++k) {
        const IngestChunk& chunk = ranges[k].chunk;
        group.push_back({chunk.node, chunk.first, chunk.num_rows()});
      }
      strategy->ApplyGroup(group.data(), group.size(),
                           ranges[j - 1].visible.data());
    } else {
      // Per-range horizons: a strategy without the group hook may read ANY
      // relation while applying (first-order IVM's delta join re-
      // enumerates the whole database), so no row may become VISIBLE
      // before its own range applies — even though it may already be
      // physically committed.
      const IngestChunk& chunk = ranges[i].chunk;
      strategy->ApplyBatch(chunk.node, chunk.first, chunk.num_rows(),
                           ranges[i].visible.data());
    }
    i = j;
  }
}

// The compute stage's work on one committed epoch: per range, either
// speculate a delta (recording observed child versions) or stage child-key
// probes when the range's probe set intersects `pending_writes` (the union
// of the write closures of epochs handed downstream but not yet
// maintained) or an earlier range's closure of this same epoch. Gates are
// nullable — the threaded scheduler passes both, the single-threaded
// stepper neither. Decision and output are deterministic given
// (epoch, pending_writes, speculate_past_conflicts); only the HIT RATE at
// the serial point is timing-dependent.
template <typename Strategy>
void SpeculateEpoch(Strategy* strategy, const ShadowDb& db,
                    ComputedEpoch<Strategy, true>* ce,
                    const std::vector<uint8_t>* pending_writes,
                    bool speculate_past_conflicts, CommitGate* commit_gate,
                    ViewGate* view_gate, StreamMetrics* metrics) {
  const RootedTree& tree = db.tree();
  const size_t num_nodes = static_cast<size_t>(tree.num_nodes());
  std::vector<StreamRange>& ranges = ce->epoch.ranges;
  ce->ranges.clear();
  ce->ranges.resize(ranges.size());
  // Nodes some not-yet-applied fold will write before this epoch's own
  // serial point: the in-flight epochs' write closures plus, incrementally
  // below, the closures of this epoch's earlier ranges. (A write closure
  // IS the epoch's `reads` mask — propagation writes each range node and
  // its ancestors, exactly the maintenance read set.)
  std::vector<uint8_t> conflict(num_nodes, 0);
  if (pending_writes != nullptr) conflict = *pending_writes;
  std::vector<uint8_t> probe_set(num_nodes, 0);
  for (size_t i = 0; i < ranges.size(); ++i) {
    typename ComputedEpoch<Strategy, true>::Range& cr = ce->ranges[i];
    const IngestChunk& chunk = ranges[i].chunk;
    const NodeRowRange r{chunk.node, chunk.first, chunk.num_rows()};
    std::fill(probe_set.begin(), probe_set.end(), 0);
    MarkChildren(tree, r.node, &probe_set);
    double waited = 0;
    if (MasksIntersect(probe_set, conflict) && !speculate_past_conflicts) {
      // Validation would miss with certainty — don't burn the compute on a
      // delta that gets thrown away; pack the scan's hash keys instead.
      if (commit_gate != nullptr) waited = commit_gate->BeginMaintainNode(r.node);
      cr.probes = StageChildKeys(db, r.node, r.first, r.count);
      if (commit_gate != nullptr) commit_gate->EndMaintainNode(r.node);
      cr.probes_staged = true;
      if (metrics != nullptr) metrics->probe_staged_ranges->Inc();
    } else {
      if (commit_gate != nullptr) waited = commit_gate->BeginMaintainNode(r.node);
      if (view_gate != nullptr) waited += view_gate->BeginRead(probe_set);
      cr.delta = strategy->ComputeRangeDelta(r, &cr.observed, nullptr);
      if (view_gate != nullptr) view_gate->EndRead(probe_set);
      if (commit_gate != nullptr) commit_gate->EndMaintainNode(r.node);
      cr.speculated = true;
      if (metrics != nullptr) metrics->speculated_ranges->Inc();
    }
    if (metrics != nullptr) metrics->compute_gate_wait->Observe(waited);
    MarkAncestorClosure(tree, r.node, &conflict);
  }
}

// MaintainEpoch's speculative sibling: per range, accept the precomputed
// delta when its observed child versions still hold at the serial point
// (version equality implies the child views are unchanged, so the delta is
// bit-identical to a fresh compute), else recompute serially — consuming
// staged probes when the compute stage packed them. Group strategies
// validate/recompute ALL of a group's ranges against the pre-group state
// before any of the group propagates, matching ApplyGroup's
// compute-all-then-apply-all shape; per-range strategies validate
// immediately before each range's propagation. Horizons are identical to
// MaintainEpoch's (the group's LAST range / the range itself).
template <typename Strategy>
void MaintainEpochSpeculative(Strategy* strategy,
                              ComputedEpoch<Strategy, true>* ce,
                              ViewWriteGate* gate, StreamMetrics* metrics) {
  std::vector<StreamRange>& ranges = ce->epoch.ranges;
  RELBORG_DCHECK(ce->ranges.size() == ranges.size());
  auto range_of = [&](size_t k) {
    const IngestChunk& chunk = ranges[k].chunk;
    return NodeRowRange{chunk.node, chunk.first, chunk.num_rows()};
  };
  // Validates cr against the current views; recomputes on a miss (or when
  // the range was never speculated). After this call cr.delta is exactly
  // what a serial compute at this point produces.
  auto settle = [&](typename ComputedEpoch<Strategy, true>::Range* cr,
                    size_t k) {
    if (cr->speculated && strategy->RangeDeltaValid(cr->observed)) {
      if (metrics != nullptr) metrics->speculation_hits->Inc();
      return;
    }
    if (cr->speculated && metrics != nullptr) metrics->speculation_misses->Inc();
    cr->observed.clear();
    cr->delta = strategy->ComputeRangeDelta(
        range_of(k), &cr->observed,
        cr->probes_staged ? &cr->probes : nullptr);
  };
  size_t i = 0;
  while (i < ranges.size()) {
    size_t j = i + 1;
    if constexpr (HasApplyGroup<Strategy>::value) {
      while (j < ranges.size() && ranges[j].group == ranges[i].group) ++j;
      const size_t* horizon = ranges[j - 1].visible.data();
      for (size_t k = i; k < j; ++k) settle(&ce->ranges[k], k);
      for (size_t k = i; k < j; ++k) {
        strategy->ApplyRangeDelta(range_of(k), std::move(ce->ranges[k].delta),
                                  horizon, gate);
      }
    } else {
      settle(&ce->ranges[i], i);
      strategy->ApplyRangeDelta(range_of(i), std::move(ce->ranges[i].delta),
                                ranges[i].visible.data(), gate);
    }
    i = j;
  }
}

}  // namespace stream_internal

/// Epoch-boundary callback for snapshot consumers (the serve layer).
///
/// OnEpochMaintained runs ON THE APPLIER THREAD, strictly between two
/// epochs' maintenance: every fold of epoch `id` has completed and no fold
/// of epoch `id + 1` has started. That makes the callback the one place
/// where strategy state may be pinned (CovarArenaView::Pin is writer-side)
/// or copied without racing a merge. `watermark` is the per-node
/// committed-row horizon of the maintained prefix — exactly the rows a
/// serial replay would have committed after epoch `id` — so a snapshot
/// taken here is epoch-consistent across every view AND the row store.
/// Implementations must be fast (the pipeline's serial stage is waiting)
/// and must not call back into the scheduler.
class StreamEpochObserver {
 public:
  virtual ~StreamEpochObserver() = default;
  virtual void OnEpochMaintained(uint64_t id,
                                 const std::vector<size_t>& watermark) = 0;
};

/// A batch the ingress validator rejected, retained for inspection.
struct QuarantinedBatch {
  UpdateBatch batch;
  Status status;  // why it was rejected
};

/// The pipeline. Construct over a ShadowDb + strategy, Push batches (blocks
/// on backpressure), then Finish() to flush, drain and join. The strategy's
/// result state (e.g. CovarFivm::Current) is valid after Finish.
///
/// FAILURE MODEL (docs/ARCHITECTURE.md, "Failure model & recovery").
/// Malformed batches are rejected at Push (quarantined, counted, the
/// pipeline keeps running); a failed STAGE — an injected fault, or a
/// checkpoint write error — latches the first failure's (stage, epoch,
/// cause), closes the ingress and drains every queue cleanly: no thread is
/// killed, no lock stays held, later batches and epochs are dropped, and
/// Finish() returns the latched Status. After a failure the ShadowDb and
/// strategy may hold a torn mid-epoch state — recover by restoring a FRESH
/// db + strategy via RestoreFromCheckpoint and replaying the stream tail.
///
/// THREAD SAFETY: Push/TryPush are single-producer (one caller thread).
/// Finish may be called from the producer thread (idempotent).
/// SetEpochObserver and the BeginViewRead/EndViewRead gate pair are safe
/// from any thread while the pipeline is live — they exist for the serve
/// layer's concurrent snapshot readers (serve/snapshot_server.h).
template <typename Strategy>
class StreamScheduler {
 public:
  // `resume` (optional) seeds the structural cursor from a checkpoint
  // restored into `shadow` + `strategy` (see RestoreFromCheckpoint): epoch
  // numbering, cumulative stats and the maintained watermark continue
  // exactly where the checkpointed run stood, so replaying the stream tail
  // reproduces the uninterrupted run bit for bit.
  StreamScheduler(ShadowDb* shadow, Strategy* strategy,
                  const StreamOptions& options = {},
                  const StreamCheckpointInfo* resume = nullptr)
      : shadow_(shadow),
        strategy_(strategy),
        options_(options),
        assembler_(shadow, options),
        validator_(shadow),
        ingress_(options.max_queued_rows),
        sealed_(options.max_queued_epochs),
        committed_(options.max_queued_epochs),
        computed_(options.max_compute_ahead_epochs),
        gate_(shadow->tree().num_nodes()),
        view_gate_(shadow->tree().num_nodes()),
        all_reads_(shadow->tree().num_nodes(), 1),
        maintained_watermark_(shadow->tree().num_nodes(), 0),
        owned_registry_(options.metrics != nullptr
                            ? nullptr
                            : new obs::MetricsRegistry()),
        registry_(options.metrics != nullptr ? options.metrics
                                             : owned_registry_.get()),
        m_(stream_internal::StreamMetrics::Register(registry_)) {
    if (options_.trace != nullptr) {
      // The producer (Push/TryPush) thread never installs a trace scope;
      // the scheduler records its ingress events into this dedicated ring.
      // Push is single-producer, so the single-writer contract holds.
      producer_log_ = options_.trace->RegisterThread("producer");
    }
    if (resume != nullptr) {
      m_.batches->Inc(static_cast<double>(resume->batches));
      m_.rows->Inc(static_cast<double>(resume->rows));
      m_.epochs->Inc(static_cast<double>(resume->epochs));
      m_.ranges->Inc(static_cast<double>(resume->ranges));
      cum_batches_ = resume->batches;
      cum_rows_ = resume->rows;
      maintained_epochs_.store(resume->epochs, std::memory_order_relaxed);
      maintained_watermark_ = resume->watermark;
      maintained_watermark_.resize(shadow->tree().num_nodes(), 0);
      assembler_.ResumeAt(resume->epochs);
    }
    assemble_thread_ = std::thread([this] { AssembleLoop(); });
    commit_thread_ = std::thread([this] { CommitLoop(); });
    compute_thread_ = std::thread([this] { ComputeLoop(); });
    apply_thread_ = std::thread([this] { ApplyLoop(); });
    if (options_.stall_timeout_seconds > 0) {
      watchdog_thread_ = std::thread([this] { WatchdogLoop(); });
    }
  }

  ~StreamScheduler() {
    if (!finished_) Finish();
  }

  StreamScheduler(const StreamScheduler&) = delete;
  StreamScheduler& operator=(const StreamScheduler&) = delete;

  // Enqueues one batch; blocks while the ingress queue is full. Zero-row
  // batches flow through (they count toward epoch sealing, like in
  // ReplayStream) but still weigh one row, so a flood of empty batches
  // hits backpressure instead of growing the queue without bound.
  //
  // Never aborts on bad input or misuse: a batch that fails validation is
  // quarantined and reported (kInvalidArgument; the pipeline keeps
  // processing later batches), a Push after Finish or after a pipeline
  // failure is dropped and reported (kFailedPrecondition / the failure's
  // status), both counted in StreamStats.
  Status Push(UpdateBatch batch) {
    return PushImpl(std::move(batch), /*timeout=*/nullptr);
  }

  // Bounded-wait Push: fails with kDeadlineExceeded (batch dropped,
  // counted in try_push_timeouts) instead of blocking past `timeout` when
  // the ingress queue stays full — producers that cannot stall get a
  // bounded handoff instead of unbounded backpressure.
  Status TryPush(UpdateBatch batch, std::chrono::nanoseconds timeout) {
    return PushImpl(std::move(batch), &timeout);
  }

  // Flushes the partial epoch, drains the pipeline, joins the worker
  // threads and reports the run's stats through *stats_out (optional).
  // Returns OK for a clean run, or the FIRST stage failure — naming the
  // stage and epoch — when the pipeline degraded. Idempotent.
  Status Finish(StreamStats* stats_out = nullptr) {
    if (!finished_) {
      finished_ = true;
      ingress_.Close();
      assemble_thread_.join();
      commit_thread_.join();
      compute_thread_.join();
      apply_thread_.join();
      if (watchdog_thread_.joinable()) {
        {
          std::lock_guard<std::mutex> lock(watchdog_mu_);
          watchdog_stop_ = true;
        }
        watchdog_cv_.notify_all();
        watchdog_thread_.join();
      }
      m_.ingress_high_water->Set(
          static_cast<double>(ingress_.high_water()));
      m_.epoch_queue_high_water->Set(static_cast<double>(
          std::max({sealed_.high_water(), committed_.high_water(),
                    computed_.high_water()})));
    }
    if (stats_out != nullptr) *stats_out = m_.Derive();
    return status();
  }

  /// The pipeline's metrics registry: the scheduler's own instruments plus
  /// anything else registered into it (the serve layer when it shares the
  /// registry via StreamOptions::metrics). Safe from any thread while the
  /// pipeline is live — every instrument is atomic.
  obs::MetricsRegistry& metrics() { return *registry_; }
  const obs::MetricsRegistry& metrics() const { return *registry_; }

  /// Prometheus-style text exposition of metrics(). Safe from any thread.
  std::string MetricsText() const { return registry_->ExpositionText(); }

  /// Live StreamStats snapshot derived from the registry (Finish reports
  /// the same projection after the final gauges are set). Safe from any
  /// thread; timing fields may be mid-epoch while the pipeline runs.
  StreamStats DeriveStats() const { return m_.Derive(); }

  /// The trace recorder this pipeline records into (null = tracing off).
  obs::TraceRecorder* trace() const { return options_.trace; }

  /// The first stage failure so far (OK while the pipeline is healthy).
  /// Safe from any thread.
  Status status() const {
    std::lock_guard<std::mutex> lock(fail_mu_);
    return fail_status_;
  }

  /// Removes and returns the quarantined batches accumulated so far (their
  /// rejection Status attached), oldest first. Safe from any thread.
  std::vector<QuarantinedBatch> DrainQuarantine() {
    std::lock_guard<std::mutex> lock(quarantine_mu_);
    std::vector<QuarantinedBatch> out(
        std::make_move_iterator(quarantine_.begin()),
        std::make_move_iterator(quarantine_.end()));
    quarantine_.clear();
    return out;
  }

  size_t quarantine_size() const {
    std::lock_guard<std::mutex> lock(quarantine_mu_);
    return quarantine_.size();
  }

  // Restores checkpointed state written by a scheduler with the same
  // Strategy over the same catalog: the ShadowDb prefix into `shadow`
  // (which must be fresh) and the view state into `strategy` (freshly
  // constructed). On OK, *info holds the structural cursor — pass it as
  // the `resume` constructor argument and re-push the stream from batch
  // index info->batches. kNotFound means no checkpoint exists (start from
  // scratch); kDataLoss/kInvalidArgument mean the file is unusable.
  static Status RestoreFromCheckpoint(const std::string& path,
                                      ShadowDb* shadow, Strategy* strategy,
                                      StreamCheckpointInfo* info) {
    std::vector<uint8_t> payload;
    Status st = ReadCheckpointFile(path, &payload);
    if (!st.ok()) return st;
    ByteSource src(payload.data(), payload.size());
    *info = DeserializeStreamCheckpointInfo(&src);
    if (!src.ok()) {
      return Status::DataLoss("truncated checkpoint header payload");
    }
    st = RestoreShadowDbPrefix(&src, shadow);
    if (!st.ok()) return st;
    if (src.U32() != Strategy::kCheckpointTag) {
      return Status::InvalidArgument(
          "checkpoint was written by a different IVM strategy");
    }
    st = strategy->LoadCheckpoint(&src);
    if (!st.ok()) return st;
    if (!src.Exhausted()) {
      return Status::DataLoss("checkpoint payload has trailing bytes");
    }
    return Status::Ok();
  }

  /// Registers (or, with nullptr, clears) the epoch observer. Safe from
  /// any thread at any time: the swap and the applier's callback share one
  /// mutex, so after SetEpochObserver(nullptr) returns, no callback is in
  /// flight and none will start — an observer may be destroyed right
  /// after clearing itself. Epochs maintained before registration are not
  /// replayed; register before the first Push to observe every epoch.
  void SetEpochObserver(StreamEpochObserver* observer) {
    std::lock_guard<std::mutex> lock(observer_mu_);
    observer_ = observer;
  }

  /// Read-locks every view of `mask` (1 = lock) for an external snapshot
  /// reader, all-or-nothing; returns seconds spent blocked. Safe from any
  /// client thread. Readers block only a fold into one of the masked views
  /// (and are blocked by one) — never the committer, the compute stage, or
  /// other readers. Callers must not block or wait on pipeline progress
  /// while holding the lock, and must pair every BeginViewRead with one
  /// EndViewRead of the same mask.
  double BeginViewRead(const std::vector<uint8_t>& mask) {
    return view_gate_.BeginRead(mask);
  }

  void EndViewRead(const std::vector<uint8_t>& mask) {
    view_gate_.EndRead(mask);
  }

 private:
  // Shared Push/TryPush path. Validation runs in two phases: the read-only
  // Check BEFORE the enqueue attempt, the multiset Account only AFTER a
  // successful enqueue — a batch that times out in TryPush leaves the
  // validator state untouched, so a later retry of the same batch is
  // judged identically.
  Status PushImpl(UpdateBatch batch, const std::chrono::nanoseconds* timeout) {
    if (finished_) {
      m_.dropped_batches->Inc();
      return Status::FailedPrecondition("Push after Finish: batch dropped");
    }
    stream_internal::BatchValidator::CheckResult chk;
    if (options_.validate_ingress) {
      Status st = validator_.Check(batch, &chk);
      if (!st.ok()) {
        m_.rejected_batches->Inc();
        m_.rejected_rows->Inc(static_cast<double>(batch.rows.size()));
        Quarantine(std::move(batch), st);
        return st;
      }
    }
    const size_t weight = std::max<size_t>(batch.rows.size(), 1);
    if (timeout != nullptr) {
      using Channel = stream_internal::BoundedChannel<UpdateBatch>;
      switch (ingress_.TryPush(&batch, weight, *timeout)) {
        case Channel::TryPushResult::kTimeout:
          m_.try_push_timeouts->Inc();
          return Status::DeadlineExceeded(
              "TryPush deadline expired: batch dropped");
        case Channel::TryPushResult::kClosed:
          return ClosedStatus();
        case Channel::TryPushResult::kOk:
          break;
      }
    } else if (!ingress_.Push(std::move(batch), weight)) {
      return ClosedStatus();
    }
    if (options_.validate_ingress) validator_.Account(chk);
    return Status::Ok();
  }

  // Push found the ingress closed mid-run: a stage failed (report its
  // status) — Close() only ever happens from Fail or Finish, and finished_
  // was checked above.
  Status ClosedStatus() {
    m_.dropped_batches->Inc();
    Status st = status();
    if (!st.ok()) return st;
    return Status::FailedPrecondition("stream pipeline closed: batch dropped");
  }

  void Quarantine(UpdateBatch batch, const Status& st) {
    // Producer-thread trace event (the producer has no ThreadTraceScope;
    // see producer_log_).
    if (producer_log_ != nullptr) {
      const uint64_t now = options_.trace->NowNs();
      producer_log_->Record("quarantine", "ingress", /*epoch=*/-1, batch.node,
                            now, now);
    }
    std::lock_guard<std::mutex> lock(quarantine_mu_);
    if (quarantine_.size() >= options_.quarantine_capacity) {
      (void)RELBORG_FAULT("stream/quarantine-full");  // observation only
      m_.quarantine_dropped_batches->Inc();
      return;
    }
    quarantine_.push_back(QuarantinedBatch{std::move(batch), st});
    m_.quarantined_batches->Inc();
  }

  // Latches the FIRST stage failure (later ones lose the race and are
  // dropped with their epochs), closes the ingress so the producer learns
  // immediately, and flips the drain flag every stage checks: queued work
  // keeps flowing through the channels but is no longer processed, so all
  // four threads wind down through the normal close cascade with no lock
  // held and no thread killed.
  void Fail(const char* stage, uint64_t epoch_id, const Status& cause) {
    // Stage threads carry a trace scope; the failure lands in their ring.
    RELBORG_TRACE_INSTANT("stage-failure", "fault",
                          static_cast<int64_t>(epoch_id), -1);
    {
      std::lock_guard<std::mutex> lock(fail_mu_);
      if (fail_status_.ok()) {
        fail_status_ =
            Status(cause.code(), std::string("stage ") + stage +
                                     " failed at epoch " +
                                     std::to_string(epoch_id) + ": " +
                                     cause.message());
      }
    }
    failed_.store(true, std::memory_order_release);
    ingress_.Close();
  }

  bool Failed() const { return failed_.load(std::memory_order_acquire); }

  // Stage progress heartbeat for the stall watchdog.
  void Progress() { progress_.fetch_add(1, std::memory_order_relaxed); }

  void AssembleLoop() {
    obs::ThreadTraceScope trace_scope(options_.trace, "assemble");
    UpdateBatch batch;
    StreamEpoch epoch;
    while (ingress_.Pop(&batch)) {
      if (Failed()) continue;  // drain: drop without assembling
      obs::TraceSpan span("assemble", "stage");
      m_.batches->Inc();
      m_.rows->Inc(static_cast<double>(batch.rows.size()));
      if (assembler_.Add(std::move(batch), &epoch)) {
        span.set_epoch(static_cast<int64_t>(epoch.id));
        sealed_.Push(std::move(epoch));
        epoch = StreamEpoch();
      }
      Progress();
    }
    if (!Failed() && assembler_.Flush(&epoch)) sealed_.Push(std::move(epoch));
    sealed_.Close();
  }

  void CommitLoop() {
    obs::ThreadTraceScope trace_scope(options_.trace, "commit");
    StreamEpoch epoch;
    while (sealed_.Pop(&epoch)) {
      if (Failed()) continue;  // drain: drop without committing
      if (options_.overlap_commits) {
        obs::TraceSpan span("commit", "stage",
                            static_cast<int64_t>(epoch.id));
        WallTimer timer;
        double waited = 0;
        bool faulted = false;
        // Per-RANGE commit with a fault site before each splice: an
        // injected fault here leaves the ShadowDb genuinely torn
        // mid-epoch (earlier ranges spliced, later ones lost) — exactly
        // the state a real crash leaves, which recovery must discard by
        // restoring into a fresh db.
        for (StreamRange& range : epoch.ranges) {
          if (RELBORG_FAULT("stream/pre-commit-chunk")) {
            Fail("commit", epoch.id,
                 Status::Aborted("injected fault at stream/pre-commit-chunk"));
            faulted = true;
            break;
          }
          const int node = range.chunk.node;
          waited += gate_.BeginCommit(node);
          shadow_->CommitChunk(std::move(range.chunk));
          gate_.EndCommit(node);
        }
        m_.commit_gate_wait->Observe(waited);
        m_.commit_seconds->Observe(timer.Seconds() - waited);
        if (faulted) continue;  // epoch dropped mid-commit
        // Observability: how far commits ran ahead of maintenance (the
        // applier publishes the count of maintained epochs; relaxed reads
        // are fine for a gauge).
        const uint64_t maintained =
            maintained_epochs_.load(std::memory_order_relaxed);
        m_.commit_ahead_max->SetMax(
            static_cast<double>(epoch.id + 1 - maintained));
      }
      committed_.Push(std::move(epoch));
      Progress();
    }
    committed_.Close();
  }

  using ComputedEpoch = stream_internal::ComputedEpoch<Strategy>;

  // True when this run speculates: the strategy has the per-range API, the
  // compute overlap is on, and commits run ahead (with overlap_commits off
  // an epoch's rows are not committed yet when the compute stage sees it).
  static constexpr bool kSpec =
      stream_internal::HasSpeculativeCompute<Strategy>::value;
  bool SpeculationOn() const {
    return kSpec && options_.overlap_commits && options_.overlap_compute;
  }

  void ComputeLoop() {
    obs::ThreadTraceScope trace_scope(options_.trace, "compute");
    // Epochs handed downstream but not yet maintained — their write
    // closures are the conflict set for new speculations. Pruned by the
    // applier's published epoch count: the acquire load pairs with the
    // release store in ApplyLoop, so once an epoch counts as maintained,
    // its folds (and version bumps) are visible here too.
    std::deque<std::pair<uint64_t, std::vector<uint8_t>>> pending;
    std::vector<uint8_t> pending_mask;
    StreamEpoch epoch;
    while (committed_.Pop(&epoch)) {
      if (Failed()) continue;  // drain: drop without computing
      ComputedEpoch ce;
      ce.epoch = std::move(epoch);
      if constexpr (kSpec) {
        if (SpeculationOn()) {
          if (RELBORG_FAULT("stream/pre-compute-range")) {
            Fail("compute", ce.epoch.id,
                 Status::Aborted("injected fault at stream/pre-compute-range"));
            continue;
          }
          obs::TraceSpan span("compute", "stage",
                              static_cast<int64_t>(ce.epoch.id));
          WallTimer timer;
          const uint64_t maintained =
              maintained_epochs_.load(std::memory_order_acquire);
          while (!pending.empty() && pending.front().first < maintained) {
            pending.pop_front();
          }
          m_.compute_overlap_max->SetMax(
              static_cast<double>(ce.epoch.id + 1 - maintained));
          pending_mask.assign(all_reads_.size(), 0);
          for (const auto& [id, reads] : pending) {
            for (size_t v = 0; v < reads.size(); ++v) {
              pending_mask[v] |= reads[v];
            }
          }
          const double waited_before = m_.compute_gate_wait->Sum();
          stream_internal::SpeculateEpoch(
              strategy_, *shadow_, &ce, &pending_mask,
              options_.speculate_past_conflicts, &gate_, &view_gate_, &m_);
          pending.emplace_back(ce.epoch.id, ce.epoch.reads);
          m_.compute_seconds->Observe(
              timer.Seconds() -
              (m_.compute_gate_wait->Sum() - waited_before));
        }
      }
      computed_.Push(std::move(ce));
      Progress();
    }
    computed_.Close();
  }

  // Maintains one computed epoch: through the speculative path (validate /
  // recompute / propagate under the view gate) when this run speculates,
  // else the plain serial path.
  void Maintain(ComputedEpoch* ce) {
    if constexpr (kSpec) {
      if (SpeculationOn()) {
        stream_internal::MaintainEpochSpeculative(strategy_, ce, &view_gate_,
                                                  &m_);
        return;
      }
    }
    stream_internal::MaintainEpoch(strategy_, &ce->epoch);
  }

  void ApplyLoop() {
    obs::ThreadTraceScope trace_scope(options_.trace, "apply");
    ComputedEpoch ce;
    while (computed_.Pop(&ce)) {
      if (Failed()) continue;  // drain: drop without maintaining
      StreamEpoch& epoch = ce.epoch;
      m_.epochs->Inc();
      m_.ranges->Inc(static_cast<double>(epoch.ranges.size()));
      cum_batches_ += epoch.batches;
      cum_rows_ += epoch.rows;
      if (!options_.overlap_commits) {
        // Serialized schedule: the commit runs here, but is still booked
        // as commit time so apply_seconds stays commensurate across the
        // overlap A/B.
        if (RELBORG_FAULT("stream/pre-commit-chunk")) {
          Fail("commit", epoch.id,
               Status::Aborted("injected fault at stream/pre-commit-chunk"));
          continue;
        }
        obs::TraceSpan commit_span("commit", "stage",
                                   static_cast<int64_t>(epoch.id));
        WallTimer commit_timer;
        stream_internal::CommitEpoch(shadow_, &epoch);
        m_.commit_seconds->Observe(commit_timer.Seconds());
      }
      if (RELBORG_FAULT("stream/pre-publish-merge")) {
        Fail("apply", epoch.id,
             Status::Aborted("injected fault at stream/pre-publish-merge"));
        continue;
      }
      obs::TraceSpan apply_span("apply", "stage",
                                static_cast<int64_t>(epoch.id));
      WallTimer timer;
      if (options_.overlap_commits) {
        const std::vector<uint8_t>& reads =
            stream_internal::ReadsAncestorClosure<Strategy>::value
                ? epoch.reads
                : all_reads_;
        m_.maintain_gate_wait->Observe(gate_.BeginMaintain(reads));
        Maintain(&ce);
        gate_.EndMaintain(reads);
      } else {
        Maintain(&ce);
      }
      // Release pairs with ComputeLoop's acquire: an epoch observed as
      // maintained has all its folds and version bumps visible.
      maintained_epochs_.store(epoch.id + 1, std::memory_order_release);
      // Snapshot-horizon export: the per-node watermark after this epoch's
      // last commit IS the serial replay's committed state at this epoch
      // boundary (zero-range epochs leave it unchanged). The observer runs
      // between epochs on this (the applier) thread — the only point where
      // pinning strategy views cannot race a fold.
      if (!epoch.ranges.empty()) {
        maintained_watermark_ = epoch.ranges.back().visible;
      }
      {
        std::lock_guard<std::mutex> lock(observer_mu_);
        if (observer_ != nullptr) {
          observer_->OnEpochMaintained(epoch.id, maintained_watermark_);
        }
      }
      m_.apply_seconds->Observe(timer.Seconds());
      apply_span.End();
      const double latency =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        epoch.sealed_at)
              .count();
      m_.epoch_latency->Observe(latency);
      m_.epoch_latency_max->SetMax(latency);
      Progress();
      MaybeCheckpoint(epoch.id);
    }
  }

  // Runs on the applier thread right after epoch `epoch_id` was maintained
  // and (for CovarFivm) published. The snapshot it writes is the exact
  // state a serial replay of the first cum_batches_ source batches
  // produces: committed ShadowDb prefix up to the maintained watermark,
  // plus each strategy's accumulator payload serialized byte-exact (FP
  // folds are never recomputed at restore — summation order would differ).
  void MaybeCheckpoint(uint64_t epoch_id) {
    if constexpr (!stream_internal::HasCheckpoint<Strategy>::value) {
      (void)epoch_id;
      return;
    } else {
      MaybeCheckpointImpl(epoch_id);
    }
  }

  template <typename S = Strategy,
            typename = std::enable_if_t<
                stream_internal::HasCheckpoint<S>::value>>
  void MaybeCheckpointImpl(uint64_t epoch_id) {
    if (options_.checkpoint.path.empty() ||
        options_.checkpoint.every_epochs == 0) {
      return;
    }
    if ((epoch_id + 1) % options_.checkpoint.every_epochs != 0) return;
    if (RELBORG_FAULT("stream/pre-checkpoint-write")) {
      Fail("checkpoint", epoch_id,
           Status::Aborted("injected fault at stream/pre-checkpoint-write"));
      return;
    }
    obs::TraceSpan span("checkpoint", "checkpoint",
                        static_cast<int64_t>(epoch_id));
    WallTimer timer;
    ByteSink sink;
    StreamCheckpointInfo info;
    info.epochs = epoch_id + 1;
    info.batches = cum_batches_;
    info.rows = cum_rows_;
    info.ranges = static_cast<size_t>(m_.ranges->Value());
    info.watermark = maintained_watermark_;
    SerializeStreamCheckpointInfo(info, &sink);
    // With overlapped commits the committer may be splicing FUTURE epochs
    // into the ShadowDb right now (column appends can reallocate), so take
    // the maintain side of the gate across the prefix serialization. Safe
    // against self-deadlock: BeginMaintain waits only on busy_ committers,
    // never on other maintain-side holders (the compute thread's node
    // holds don't block us, and we hold nothing yet).
    if (options_.overlap_commits) {
      m_.maintain_gate_wait->Observe(gate_.BeginMaintain(all_reads_));
    }
    SerializeShadowDbPrefix(*shadow_, maintained_watermark_, &sink);
    if (options_.overlap_commits) gate_.EndMaintain(all_reads_);
    sink.U32(Strategy::kCheckpointTag);
    strategy_->SaveCheckpoint(&sink);
    size_t bytes = 0;
    Status st = WriteCheckpointFile(options_.checkpoint.path, sink,
                                    options_.checkpoint.fsync, &bytes);
    if (!st.ok()) {
      Fail("checkpoint", epoch_id, st);
      return;
    }
    m_.checkpoint_bytes->Inc(static_cast<double>(bytes));
    m_.checkpoint_write->Observe(timer.Seconds());
  }

  // Stall watchdog (own thread, only when options_.stall_timeout_seconds
  // > 0): wakes every interval; if no stage made progress since the last
  // wake AND work is queued, emits ONE structured `stream.stall` record to
  // stderr — queue depths, maintained epochs, per-node committed-row
  // watermarks and the trace tail, formatted atomically so concurrent
  // stalls never interleave — and bumps the stall counter. Purely
  // diagnostic: it never unblocks or kills anything.
  void WatchdogLoop() {
    obs::ThreadTraceScope trace_scope(options_.trace, "watchdog");
    const auto interval = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::duration<double>(options_.stall_timeout_seconds));
    std::unique_lock<std::mutex> lock(watchdog_mu_);
    uint64_t last = progress_.load(std::memory_order_relaxed);
    while (!watchdog_stop_) {
      watchdog_cv_.wait_for(lock, interval, [&] { return watchdog_stop_; });
      if (watchdog_stop_) break;
      const uint64_t now = progress_.load(std::memory_order_relaxed);
      if (now != last) {
        last = now;
        continue;
      }
      const size_t qi = ingress_.size();
      const size_t qs = sealed_.size();
      const size_t qc = committed_.size();
      const size_t qx = computed_.size();
      if (qi + qs + qc + qx == 0 || Failed()) continue;  // idle or draining
      m_.watchdog_stalls->Inc();
      RELBORG_TRACE_INSTANT("stall", "watchdog", -1, -1);
      obs::StructuredEvent ev("stream.stall");
      ev.Add("no_progress_s", options_.stall_timeout_seconds)
          .Add("ingress", static_cast<uint64_t>(qi))
          .Add("sealed", static_cast<uint64_t>(qs))
          .Add("committed", static_cast<uint64_t>(qc))
          .Add("computed", static_cast<uint64_t>(qx))
          .Add("maintained_epochs",
               static_cast<uint64_t>(
                   maintained_epochs_.load(std::memory_order_relaxed)));
      std::string watermarks;
      char buf[64];
      for (int v = 0; v < shadow_->tree().num_nodes(); ++v) {
        std::snprintf(buf, sizeof(buf), "    node %d committed_rows=%zu\n", v,
                      shadow_->committed_rows(v));
        watermarks += buf;
      }
      ev.Detail("watermarks", watermarks);
      if (options_.trace != nullptr) {
        // Tolerated-racy read of the most recent spans across all rings.
        ev.Detail("trace_tail", options_.trace->TailString(16));
      }
      ev.EmitToStderr();
    }
  }

  ShadowDb* shadow_;
  Strategy* strategy_;
  StreamOptions options_;
  EpochAssembler assembler_;  // assemble thread only (after construction)
  // Producer-thread state (same thread as Push/TryPush/Finish): the
  // ingress validator's live-multiplicity multiset and the producer-owned
  // rejection counters live here; the quarantine is shared (mutex).
  stream_internal::BatchValidator validator_;
  stream_internal::BoundedChannel<UpdateBatch> ingress_;
  stream_internal::BoundedChannel<StreamEpoch> sealed_;
  stream_internal::BoundedChannel<StreamEpoch> committed_;
  stream_internal::BoundedChannel<ComputedEpoch> computed_;
  stream_internal::CommitGate gate_;
  stream_internal::ViewGate view_gate_;
  const std::vector<uint8_t> all_reads_;  // whole-db read set (all ones)
  std::atomic<uint64_t> maintained_epochs_{0};
  // Applier-thread state: per-node committed-row horizon of the maintained
  // epoch prefix, exported to the observer at each epoch boundary.
  std::vector<size_t> maintained_watermark_;
  // Guards observer_ against SetEpochObserver from other threads; held
  // across each callback so clearing the observer synchronizes with any
  // in-flight call.
  std::mutex observer_mu_;
  StreamEpochObserver* observer_ = nullptr;
  // Metrics: every instrument is atomic, so the old per-thread stats
  // partitioning is no longer load-bearing — but each instrument still has
  // a single writer thread (same partitioning as before), which keeps the
  // floating-point sums in one deterministic accumulation order. The
  // registry is owned unless StreamOptions::metrics supplied an external
  // one; StreamStats is derived from it (StreamMetrics::Derive), never
  // maintained separately.
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_;
  stream_internal::StreamMetrics m_;
  // Producer-thread trace ring (quarantine/reject events); null when
  // tracing is off.
  obs::trace_internal::ThreadLog* producer_log_ = nullptr;
  // Applier-thread cumulative batch/row counters (seeded from `resume`):
  // the checkpoint's replay cursor — the stream prefix it captures is
  // exactly the first cum_batches_ source batches.
  size_t cum_batches_ = 0;
  size_t cum_rows_ = 0;
  // Degradation state: failed_ is the drain flag every stage polls;
  // fail_status_ (first failure wins) is what Finish/status report.
  std::atomic<bool> failed_{false};
  mutable std::mutex fail_mu_;
  Status fail_status_;
  // Bounded quarantine of rejected ingress batches (producer writes,
  // any thread drains).
  mutable std::mutex quarantine_mu_;
  std::deque<QuarantinedBatch> quarantine_;
  // Stall watchdog state. progress_ is bumped by every stage on every
  // item; the watchdog compares successive samples.
  std::atomic<uint64_t> progress_{0};
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;  // guarded by watchdog_mu_
  std::thread assemble_thread_;
  std::thread commit_thread_;
  std::thread compute_thread_;
  std::thread apply_thread_;
  std::thread watchdog_thread_;
  bool finished_ = false;
};

// Streams `stream` through an async scheduler and finishes. The common
// entry point the IVM strategies share. With `status` non-null it receives
// the run's degradation status: a pipeline stage failure if one occurred,
// else the first push rejection (quarantined batch), else OK — the stream
// is always driven to completion either way.
template <typename Strategy>
StreamStats ApplyStream(ShadowDb* shadow, Strategy* strategy,
                        const std::vector<UpdateBatch>& stream,
                        const StreamOptions& options = {},
                        Status* status = nullptr) {
  StreamScheduler<Strategy> scheduler(shadow, strategy, options);
  Status first_reject = Status::Ok();
  for (const UpdateBatch& batch : stream) {
    Status st = scheduler.Push(batch);
    if (!st.ok() && first_reject.ok()) first_reject = st;
  }
  StreamStats stats;
  Status finish = scheduler.Finish(&stats);
  if (status != nullptr) *status = !finish.ok() ? finish : first_reject;
  return stats;
}

// Serial reference: the same epochs committed and maintained on the
// caller's thread with no queues or worker threads. StreamScheduler
// results are bit-identical to this for any thread count and any commit
// run-ahead; with options.epoch_batches == 1 this is in turn bit-identical
// to the classic append-then-ApplyBatch loop.
template <typename Strategy>
StreamStats ReplayStream(ShadowDb* shadow, Strategy* strategy,
                         const std::vector<UpdateBatch>& stream,
                         const StreamOptions& options = {}) {
  EpochAssembler assembler(shadow, options);
  StreamStats stats;
  StreamEpoch epoch;
  auto apply = [&] {
    WallTimer timer;
    stats.epochs++;
    stats.ranges += epoch.ranges.size();
    stream_internal::CommitEpoch(shadow, &epoch);
    stream_internal::MaintainEpoch(strategy, &epoch);
    stats.apply_seconds += timer.Seconds();
    epoch = StreamEpoch();
  };
  for (const UpdateBatch& batch : stream) {
    stats.batches++;
    stats.rows += batch.rows.size();
    if (assembler.Add(batch, &epoch)) apply();
  }
  if (assembler.Flush(&epoch)) apply();
  return stats;
}

// One stage advancement of the step-driven pipeline below.
enum class PipelineStep { kAssemble, kCommit, kCompute, kApply };

// Single-threaded, step-driven twin of StreamScheduler: the same stages,
// queues, caps and maintenance code paths, advanced one explicit stage
// step at a time with no threads and no gates. A successful step appends
// one letter to the trace (A = feed batches until an epoch seals, C =
// commit one epoch, X = compute/speculate one epoch, M = maintain one
// epoch); a step that cannot make progress (empty input or full output
// queue) returns false and changes nothing. Step is a deterministic
// function of the current state, so replaying a recorded trace against a
// fresh pipeline with the same (stream, options) reproduces the schedule
// EXACTLY — the stress suite drives random traces, dumps the trace on
// failure, and any interleaving the threaded scheduler can produce
// (modulo gate timing, which never affects what is computed) corresponds
// to some trace here. Results are bit-identical to ReplayStream for every
// valid trace.
template <typename Strategy>
class SteppedStreamPipeline {
  using Computed = stream_internal::ComputedEpoch<Strategy>;
  static constexpr bool kSpec =
      stream_internal::HasSpeculativeCompute<Strategy>::value;

 public:
  SteppedStreamPipeline(ShadowDb* shadow, Strategy* strategy,
                        std::vector<UpdateBatch> stream,
                        const StreamOptions& options = {})
      : shadow_(shadow),
        strategy_(strategy),
        options_(options),
        assembler_(shadow, options),
        stream_(std::move(stream)),
        m_(stream_internal::StreamMetrics::Register(&registry_)) {}

  // Attempts one step; true iff the stage made progress.
  bool Step(PipelineStep step) {
    bool progressed = false;
    switch (step) {
      case PipelineStep::kAssemble:
        progressed = StepAssemble();
        break;
      case PipelineStep::kCommit:
        progressed = StepCommit();
        break;
      case PipelineStep::kCompute:
        progressed = StepCompute();
        break;
      case PipelineStep::kApply:
        progressed = StepApply();
        break;
    }
    if (progressed) trace_.push_back(StepLetter(step));
    return progressed;
  }

  // Round-robins the stages until everything is drained. Always
  // terminates: whenever the pipeline is not drained, at least one stage
  // can progress (a full queue always has a non-full consumer downstream).
  void Drain() {
    static constexpr PipelineStep kAll[] = {
        PipelineStep::kAssemble, PipelineStep::kCommit, PipelineStep::kCompute,
        PipelineStep::kApply};
    bool any = true;
    while (any) {
      any = false;
      for (PipelineStep s : kAll) any = Step(s) || any;
    }
    RELBORG_CHECK(drained());
  }

  bool drained() const {
    return next_batch_ >= stream_.size() && flushed_ && sealed_.empty() &&
           committed_.empty() && computed_.empty();
  }

  static char StepLetter(PipelineStep step) {
    switch (step) {
      case PipelineStep::kAssemble:
        return 'A';
      case PipelineStep::kCommit:
        return 'C';
      case PipelineStep::kCompute:
        return 'X';
      case PipelineStep::kApply:
        return 'M';
    }
    return '?';
  }

  // The successful steps taken so far, in order.
  const std::string& trace() const { return trace_; }
  // Derived from the pipeline's private registry, like the threaded
  // scheduler's Finish (by value: the projection is computed on demand).
  StreamStats stats() const { return m_.Derive(); }
  obs::MetricsRegistry& metrics() { return registry_; }

 private:
  bool StepAssemble() {
    if (sealed_.size() >= options_.max_queued_epochs) return false;
    if (next_batch_ >= stream_.size() && flushed_) return false;
    StreamEpoch epoch;
    while (next_batch_ < stream_.size()) {
      UpdateBatch batch = stream_[next_batch_++];
      m_.batches->Inc();
      m_.rows->Inc(static_cast<double>(batch.rows.size()));
      if (assembler_.Add(std::move(batch), &epoch)) {
        sealed_.push_back(std::move(epoch));
        return true;
      }
    }
    flushed_ = true;
    if (assembler_.Flush(&epoch)) sealed_.push_back(std::move(epoch));
    return true;  // consumed the tail (and possibly sealed the flush epoch)
  }

  bool StepCommit() {
    if (sealed_.empty() || committed_.size() >= options_.max_queued_epochs) {
      return false;
    }
    StreamEpoch epoch = std::move(sealed_.front());
    sealed_.pop_front();
    if (options_.overlap_commits) {
      stream_internal::CommitEpoch(shadow_, &epoch);
    }
    committed_.push_back(std::move(epoch));
    return true;
  }

  bool StepCompute() {
    if (committed_.empty() ||
        computed_.size() >= options_.max_compute_ahead_epochs) {
      return false;
    }
    Computed ce;
    ce.epoch = std::move(committed_.front());
    committed_.pop_front();
    if constexpr (kSpec) {
      if (options_.overlap_commits && options_.overlap_compute) {
        // In-flight here is precisely the computed queue: epochs past the
        // compute stage, not yet maintained.
        std::vector<uint8_t> pending(ce.epoch.reads.size(), 0);
        for (const Computed& p : computed_) {
          for (size_t v = 0; v < p.epoch.reads.size(); ++v) {
            pending[v] |= p.epoch.reads[v];
          }
        }
        m_.compute_overlap_max->SetMax(
            static_cast<double>(ce.epoch.id + 1 - applied_epochs_));
        stream_internal::SpeculateEpoch(strategy_, *shadow_, &ce, &pending,
                                        options_.speculate_past_conflicts,
                                        /*commit_gate=*/nullptr,
                                        /*view_gate=*/nullptr, &m_);
      }
    }
    computed_.push_back(std::move(ce));
    return true;
  }

  bool StepApply() {
    if (computed_.empty()) return false;
    Computed ce = std::move(computed_.front());
    computed_.pop_front();
    m_.epochs->Inc();
    m_.ranges->Inc(static_cast<double>(ce.epoch.ranges.size()));
    if (!options_.overlap_commits) {
      stream_internal::CommitEpoch(shadow_, &ce.epoch);
    }
    if constexpr (kSpec) {
      if (options_.overlap_commits && options_.overlap_compute) {
        stream_internal::MaintainEpochSpeculative(strategy_, &ce,
                                                  /*gate=*/nullptr, &m_);
        applied_epochs_ = ce.epoch.id + 1;
        return true;
      }
    }
    stream_internal::MaintainEpoch(strategy_, &ce.epoch);
    applied_epochs_ = ce.epoch.id + 1;
    return true;
  }

  ShadowDb* shadow_;
  Strategy* strategy_;
  StreamOptions options_;
  EpochAssembler assembler_;
  std::vector<UpdateBatch> stream_;
  size_t next_batch_ = 0;
  bool flushed_ = false;
  std::deque<StreamEpoch> sealed_;
  std::deque<StreamEpoch> committed_;
  std::deque<Computed> computed_;
  uint64_t applied_epochs_ = 0;
  obs::MetricsRegistry registry_;
  stream_internal::StreamMetrics m_;
  std::string trace_;
};

}  // namespace relborg

#endif  // RELBORG_STREAM_STREAM_SCHEDULER_H_
