// Asynchronous, pipelined maintenance of IVM update streams with
// epoch-coalesced deltas and watermark-overlapped commits.
//
// The classic IVM driver loop interleaves three jobs on one thread:
// ingestion (appending rows and maintaining the ShadowDb's join indexes),
// delta computation, and view propagation. The StreamScheduler splits them
// into a four-stage pipeline:
//
//   caller ──Push──▶ [ingress] ──▶ assembler ──▶ [sealed] ──▶ committer
//            (bounded, blocks:       thread        (bounded)     thread
//             backpressure)                                         │
//        applier ◀── [committed] ◀────────────────────────────────┘
//         thread       (bounded)
//
//   * The INGRESS QUEUE is bounded by rows; Push blocks while it is full,
//     so a fast producer is throttled to the maintenance rate instead of
//     buffering the whole stream.
//   * The ASSEMBLER coalesces batches into EPOCHS: all of an epoch's
//     batches for one node merge into a single contiguous row range (the
//     shadow relations are per-node, so interleaved arrivals still land
//     contiguously), carrying per-row multiplicity signs so insert and
//     delete batches coalesce into the same range. It also STAGES the
//     ingestion work off the maintenance thread (ShadowDb::StageRows) and
//     attaches each range's VISIBILITY HORIZON — the per-node row
//     watermark of the serial replay at that range's commit point — plus
//     the epoch's maintenance READ SET (range nodes and their ancestors).
//     An epoch seals once it holds epoch_rows rows or epoch_batches
//     batches — a pure function of the batch sequence, never of timing.
//     Batches with zero rows count toward the batch bound (an epoch whose
//     batches were all empty seals with zero ranges and applies as a
//     structural no-op).
//   * The COMMITTER splices sealed epochs' chunks into the ShadowDb
//     (ShadowDb::CommitChunk: column splices, one index probe per distinct
//     key, then the atomic watermark flip) strictly in epoch order — and
//     CONCURRENTLY with the applier's maintenance of EARLIER epochs.
//     Overlap is safe on two independent grounds:
//       - MEMORY: a per-node CommitGate excludes the committer from any
//         node in the epoch read set the applier is currently maintaining
//         (strategies declaring kMaintainReadsAncestorClosure lock only
//         range nodes + ancestors; others — first-order IVM re-enumerates
//         the whole database — lock every node, serializing commits with
//         their maintenance but still overlapping queue/latency gaps).
//       - VISIBILITY: maintenance bounds every ShadowDb read by its
//         epoch's watermark (rows at ids >= the horizon are exactly the
//         rows later epochs spliced early), so results never depend on how
//         far commits ran ahead.
//   * The APPLIER maintains committed epochs strictly in order. Within an
//     epoch, ranges run in canonical order — deepest view group first
//     (IndependentViewGroups), ascending node id within a group. Because
//     same-group nodes are never ancestor/descendant, strategies exposing
//     ApplyGroup (CovarFivm) compute the group's deltas concurrently over
//     the ExecContext and only serialize the propagations; strategies
//     without it (HigherOrderIvm, FirstOrderIvm) get per-range maintenance
//     under per-range watermarks, each free to parallelize internally.
//
// DETERMINISM: epoch composition, application order and per-range
// watermarks are pure functions of (stream, options); every delta is
// folded with the thread-count-independent partitioning of
// core/exec_policy.h; and every maintenance read is bounded by its epoch's
// watermark, so the scheduler's result is BIT-IDENTICAL to ReplayStream
// (the same epochs committed and maintained serially on the caller's
// thread) for any ExecPolicy thread count and any commit run-ahead — the
// queues, threads and the committer's lead change when work happens, never
// what is read or summed in which order. With epoch_batches == 1 every
// batch is its own epoch and both are in turn bit-identical to the classic
// append-then-ApplyBatch loop over the original stream. Epoch coalescing
// folds same-key rows of an epoch into one delta payload before
// propagation; ring addition makes that exact (deletions cancel inserts
// inside the epoch), though the coalesced fold is a different
// floating-point summation order than per-batch replay, equal to it only
// up to rounding.
//
// Timing-dependent values (queue high-water marks, per-epoch latency, gate
// waits, the committer's maximum epoch lead) are surfaced in StreamStats
// for observability; the structural counters (epochs, ranges, rows) are
// deterministic.
//
// While a scheduler is live, the ShadowDb and the strategy belong to the
// pipeline: the caller must not touch either until Finish() returns. The
// one exception is ShadowDb::committed_rows(v) — an atomic gauge that may
// be polled from any thread (the stress suite samples it live); reading
// actual ROWS still requires waiting for Finish.
#ifndef RELBORG_STREAM_STREAM_SCHEDULER_H_
#define RELBORG_STREAM_STREAM_SCHEDULER_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "ivm/shadow_db.h"
#include "ivm/update_stream.h"
#include "ivm/view_tree.h"
#include "util/check.h"
#include "util/timer.h"

namespace relborg {

struct StreamOptions {
  // Epoch sealing bounds: an epoch seals once it holds >= epoch_rows rows
  // or >= epoch_batches batches, whichever comes first. Pure functions of
  // the batch sequence, so epoch composition never depends on timing.
  // epoch_batches == 1 disables coalescing (one batch per epoch).
  size_t epoch_rows = 8192;
  size_t epoch_batches = 64;
  // Backpressure bounds: Push blocks while the ingress queue holds
  // >= max_queued_rows rows; each of the sealed and committed epoch queues
  // holds at most max_queued_epochs epochs (so commits run at most
  // ~max_queued_epochs epochs ahead of maintenance).
  size_t max_queued_rows = 1 << 16;
  size_t max_queued_epochs = 4;
  // When false, the committer thread forwards epochs untouched and the
  // applier commits each epoch right before maintaining it — the PR-4
  // serialized schedule. Results are bit-identical either way; the toggle
  // exists for differential stress tests and overlap A/B measurements.
  bool overlap_commits = true;
};

struct StreamStats {
  // Deterministic structural counters.
  size_t batches = 0;  // source batches consumed (empty batches included)
  size_t rows = 0;     // rows across those batches
  size_t epochs = 0;   // sealed epochs applied
  size_t ranges = 0;   // coalesced per-node ranges applied
  // Timing (observability only; never affects results).
  double apply_seconds = 0;   // wall time maintaining epochs (gate wait in)
  double commit_seconds = 0;  // wall time splicing chunks, gate waits out
                              // (booked here in either overlap mode)
  double commit_gate_wait_seconds = 0;    // committer blocked on readers
  double maintain_gate_wait_seconds = 0;  // applier blocked on commits
  size_t commit_ahead_max_epochs = 0;  // committer's max lead over applier
  double epoch_latency_mean_seconds = 0;  // epoch sealed -> applied
  double epoch_latency_max_seconds = 0;
  size_t ingress_high_water_rows = 0;
  size_t epoch_queue_high_water = 0;
};

// One coalesced node-range of an epoch: the staged ingestion chunk, the
// node's view-group index (0 = deepest group; the root group is last), and
// the visibility horizon of the serial replay right after this range's
// commit — maintenance of the range bounds every per-node read by it.
struct StreamRange {
  int group = 0;
  IngestChunk chunk;
  std::vector<size_t> visible;  // per node: rows visible after this commit
};

struct StreamEpoch {
  uint64_t id = 0;
  size_t rows = 0;
  size_t batches = 0;
  // Canonical application order: ascending (group, node).
  std::vector<StreamRange> ranges;
  // Maintenance read set (per node): range nodes and their ancestors. The
  // CommitGate keeps the committer out of these nodes while the epoch is
  // being maintained by a strategy that reads only the ancestor closure.
  std::vector<uint8_t> reads;
  std::chrono::steady_clock::time_point sealed_at;
};

// Coalesces a batch sequence into epochs and stages their ingestion.
// Single-threaded (the scheduler drives it from the assembler thread;
// ReplayStream from the caller's); reads only the ShadowDb's immutable
// topology after construction.
class EpochAssembler {
 public:
  EpochAssembler(const ShadowDb* db, const StreamOptions& options);

  // Feeds one batch. Returns true when this batch sealed an epoch into
  // *out (the batch itself is part of that epoch; batches never split).
  // Zero-row batches carry no ranges but count toward the batch bound.
  bool Add(UpdateBatch batch, StreamEpoch* out);

  // Seals the in-progress partial epoch into *out; false if no batch is
  // pending (an all-empty-batch tail still seals a zero-range epoch).
  bool Flush(StreamEpoch* out);

 private:
  struct Pending {
    int node = -1;
    std::vector<std::vector<double>> rows;
    std::vector<double> signs;
  };

  void Seal(StreamEpoch* out);

  const ShadowDb* db_;
  StreamOptions options_;
  std::vector<int> group_of_;     // node -> view-group index, deepest = 0
  std::vector<size_t> next_row_;  // node -> next absolute row id
  std::vector<int> pending_of_;   // node -> index into pending_, or -1
  std::vector<Pending> pending_;
  size_t cur_rows_ = 0;
  size_t cur_batches_ = 0;
  uint64_t next_epoch_id_ = 0;
};

namespace stream_internal {

// Detects `void Strategy::ApplyGroup(const NodeRowRange*, size_t,
// const size_t*)` — the hook for concurrent maintenance of same-depth
// ranges under one visibility horizon.
template <typename Strategy, typename = void>
struct HasApplyGroup : std::false_type {};
template <typename Strategy>
struct HasApplyGroup<
    Strategy,
    std::void_t<decltype(std::declval<Strategy&>().ApplyGroup(
        std::declval<const NodeRowRange*>(), size_t{0},
        std::declval<const size_t*>()))>> : std::true_type {};

// Detects `Strategy::kMaintainReadsAncestorClosure == true`: maintenance
// of a range reads only the range's node and its ancestors, so the gate
// can lock just the epoch's read closure. Strategies without the marker
// (first-order IVM reads the whole database) lock every node.
template <typename Strategy, typename = void>
struct ReadsAncestorClosure : std::false_type {};
template <typename Strategy>
struct ReadsAncestorClosure<
    Strategy, std::void_t<decltype(Strategy::kMaintainReadsAncestorClosure)>>
    : std::bool_constant<Strategy::kMaintainReadsAncestorClosure> {};

// Minimal bounded MPSC channel: Push blocks while `capacity` worth of
// weight is queued (backpressure), Pop blocks until an item arrives or the
// channel closes empty.
template <typename T>
class BoundedChannel {
 public:
  explicit BoundedChannel(size_t capacity)
      : capacity_(std::max<size_t>(1, capacity)) {}

  // Returns false (item dropped) iff the channel is closed.
  bool Push(T item, size_t weight = 1) {
    std::unique_lock<std::mutex> lock(mu_);
    can_push_.wait(lock, [&] {
      return closed_ || items_.empty() || weight_ + weight <= capacity_;
    });
    if (closed_) return false;
    weight_ += weight;
    high_water_ = std::max(high_water_, weight_);
    items_.emplace_back(std::move(item), weight);
    can_pop_.notify_one();
    return true;
  }

  // Returns false iff the channel is closed and drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    can_pop_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front().first);
    weight_ -= items_.front().second;
    items_.pop_front();
    can_push_.notify_one();
    return true;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    can_push_.notify_all();
    can_pop_.notify_all();
  }

  // Only meaningful once the producing/consuming threads have joined.
  size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::deque<std::pair<T, size_t>> items_;
  size_t capacity_;
  size_t weight_ = 0;
  size_t high_water_ = 0;
  bool closed_ = false;
};

// Node-granular exclusion between the committer (splicing one chunk at a
// time) and the applier (maintaining one epoch's read set at a time). The
// flag flips run under one mutex, so every splice of a node
// happens-before any maintenance read of it and vice versa — the only
// cross-thread synchronization the overlapped ShadowDb needs. Deadlock-
// free by construction: neither side ever waits while holding a flag the
// other side's predicate tests (BeginMaintain waits BEFORE setting its
// active flags; the committer holds busy only across one finite splice).
class CommitGate {
 public:
  explicit CommitGate(size_t num_nodes)
      : busy_(num_nodes, 0), active_(num_nodes, 0) {}

  // Committer side: blocks while the applier is maintaining an epoch that
  // reads `node`. Returns seconds spent blocked.
  double BeginCommit(int node) {
    WallTimer timer;
    std::unique_lock<std::mutex> lock(mu_);
    can_commit_.wait(lock, [&] { return !active_[node]; });
    busy_[node] = 1;
    return timer.Seconds();
  }

  void EndCommit(int node) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      busy_[node] = 0;
    }
    can_maintain_.notify_all();
  }

  // Applier side: blocks while the committer is splicing any node of
  // `reads` (1 = the epoch's maintenance may read that node), then locks
  // those nodes against commits. Returns seconds spent blocked.
  double BeginMaintain(const std::vector<uint8_t>& reads) {
    WallTimer timer;
    std::unique_lock<std::mutex> lock(mu_);
    can_maintain_.wait(lock, [&] {
      for (size_t v = 0; v < reads.size(); ++v) {
        if (reads[v] && busy_[v]) return false;
      }
      return true;
    });
    for (size_t v = 0; v < reads.size(); ++v) {
      if (reads[v]) active_[v] = 1;
    }
    return timer.Seconds();
  }

  void EndMaintain(const std::vector<uint8_t>& reads) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t v = 0; v < reads.size(); ++v) {
        if (reads[v]) active_[v] = 0;
      }
    }
    can_commit_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable can_commit_;
  std::condition_variable can_maintain_;
  std::vector<uint8_t> busy_;   // committer splicing this node
  std::vector<uint8_t> active_;  // applier reading this node
};

// Commits every range of an epoch in canonical order: the chunk payloads
// are consumed, the range headers (node/first/rows) and watermarks stay
// for maintenance. With a gate, each splice excludes itself from nodes
// under maintenance and adds its blocked time to *gate_wait_seconds.
// Shared by the scheduler's committer thread and by ReplayStream, so both
// paths commit in the exact same order.
inline void CommitEpoch(ShadowDb* shadow, StreamEpoch* epoch,
                        CommitGate* gate = nullptr,
                        double* gate_wait_seconds = nullptr) {
  for (StreamRange& range : epoch->ranges) {
    const int node = range.chunk.node;
    double waited = 0;
    if (gate != nullptr) waited = gate->BeginCommit(node);
    shadow->CommitChunk(std::move(range.chunk));
    if (gate != nullptr) gate->EndCommit(node);
    if (gate_wait_seconds != nullptr) *gate_wait_seconds += waited;
  }
}

// Maintains one already-committed epoch, in canonical range order, each
// read bounded by the range's (or group's) visibility horizon. Shared by
// the scheduler's applier thread and by ReplayStream, so both paths
// execute the exact same sequence of floating-point operations — the
// horizons only ever exclude rows that do not exist yet in the serial
// replay.
template <typename Strategy>
void MaintainEpoch(Strategy* strategy, StreamEpoch* epoch) {
  std::vector<StreamRange>& ranges = epoch->ranges;
  size_t i = 0;
  while (i < ranges.size()) {
    size_t j = i + 1;
    if constexpr (HasApplyGroup<Strategy>::value) {
      // Maintain the whole same-depth group at once (group maintenance
      // reads only child VIEWS plus the group's own rows, and propagation
      // reads strictly shallower relations) under the group's horizon:
      // visibility after the group's LAST commit, which is exactly the
      // committed state at this point of the serial replay.
      while (j < ranges.size() && ranges[j].group == ranges[i].group) ++j;
      std::vector<NodeRowRange> group;
      group.reserve(j - i);
      for (size_t k = i; k < j; ++k) {
        const IngestChunk& chunk = ranges[k].chunk;
        group.push_back({chunk.node, chunk.first, chunk.num_rows()});
      }
      strategy->ApplyGroup(group.data(), group.size(),
                           ranges[j - 1].visible.data());
    } else {
      // Per-range horizons: a strategy without the group hook may read ANY
      // relation while applying (first-order IVM's delta join re-
      // enumerates the whole database), so no row may become VISIBLE
      // before its own range applies — even though it may already be
      // physically committed.
      const IngestChunk& chunk = ranges[i].chunk;
      strategy->ApplyBatch(chunk.node, chunk.first, chunk.num_rows(),
                           ranges[i].visible.data());
    }
    i = j;
  }
}

}  // namespace stream_internal

// The pipeline. Construct over a ShadowDb + strategy, Push batches (blocks
// on backpressure), then Finish() to flush, drain and join. The strategy's
// result state (e.g. CovarFivm::Current) is valid after Finish.
template <typename Strategy>
class StreamScheduler {
 public:
  StreamScheduler(ShadowDb* shadow, Strategy* strategy,
                  const StreamOptions& options = {})
      : shadow_(shadow),
        strategy_(strategy),
        options_(options),
        assembler_(shadow, options),
        ingress_(options.max_queued_rows),
        sealed_(options.max_queued_epochs),
        committed_(options.max_queued_epochs),
        gate_(shadow->tree().num_nodes()),
        all_reads_(shadow->tree().num_nodes(), 1) {
    assemble_thread_ = std::thread([this] { AssembleLoop(); });
    commit_thread_ = std::thread([this] { CommitLoop(); });
    apply_thread_ = std::thread([this] { ApplyLoop(); });
  }

  ~StreamScheduler() {
    if (!finished_) Finish();
  }

  StreamScheduler(const StreamScheduler&) = delete;
  StreamScheduler& operator=(const StreamScheduler&) = delete;

  // Enqueues one batch; blocks while the ingress queue is full. Zero-row
  // batches flow through (they count toward epoch sealing, like in
  // ReplayStream) but still weigh one row, so a flood of empty batches
  // hits backpressure instead of growing the queue without bound.
  void Push(UpdateBatch batch) {
    RELBORG_CHECK_MSG(!finished_, "Push after Finish");
    const size_t weight = std::max<size_t>(batch.rows.size(), 1);
    ingress_.Push(std::move(batch), weight);
  }

  // Flushes the partial epoch, drains the pipeline, joins the worker
  // threads and returns the run's stats. Idempotent.
  StreamStats Finish() {
    if (finished_) return stats_;
    finished_ = true;
    ingress_.Close();
    assemble_thread_.join();
    commit_thread_.join();
    apply_thread_.join();
    stats_.ingress_high_water_rows = ingress_.high_water();
    stats_.epoch_queue_high_water =
        std::max(sealed_.high_water(), committed_.high_water());
    if (stats_.epochs > 0) {
      stats_.epoch_latency_mean_seconds = latency_sum_ / stats_.epochs;
    }
    return stats_;
  }

 private:
  void AssembleLoop() {
    UpdateBatch batch;
    StreamEpoch epoch;
    while (ingress_.Pop(&batch)) {
      stats_.batches++;
      stats_.rows += batch.rows.size();
      if (assembler_.Add(std::move(batch), &epoch)) {
        sealed_.Push(std::move(epoch));
        epoch = StreamEpoch();
      }
    }
    if (assembler_.Flush(&epoch)) sealed_.Push(std::move(epoch));
    sealed_.Close();
  }

  void CommitLoop() {
    StreamEpoch epoch;
    while (sealed_.Pop(&epoch)) {
      if (options_.overlap_commits) {
        WallTimer timer;
        double waited = 0;
        stream_internal::CommitEpoch(shadow_, &epoch, &gate_, &waited);
        stats_.commit_gate_wait_seconds += waited;
        stats_.commit_seconds += timer.Seconds() - waited;
        // Observability: how far commits ran ahead of maintenance (the
        // applier publishes the count of maintained epochs; relaxed reads
        // are fine for a gauge).
        const uint64_t maintained =
            maintained_epochs_.load(std::memory_order_relaxed);
        stats_.commit_ahead_max_epochs =
            std::max<size_t>(stats_.commit_ahead_max_epochs,
                             static_cast<size_t>(epoch.id + 1 - maintained));
      }
      committed_.Push(std::move(epoch));
    }
    committed_.Close();
  }

  void ApplyLoop() {
    StreamEpoch epoch;
    while (committed_.Pop(&epoch)) {
      stats_.epochs++;
      stats_.ranges += epoch.ranges.size();
      if (!options_.overlap_commits) {
        // Serialized schedule: the commit runs here, but is still booked
        // as commit time so apply_seconds stays commensurate across the
        // overlap A/B.
        WallTimer commit_timer;
        stream_internal::CommitEpoch(shadow_, &epoch);
        stats_.commit_seconds += commit_timer.Seconds();
      }
      WallTimer timer;
      if (options_.overlap_commits) {
        const std::vector<uint8_t>& reads =
            stream_internal::ReadsAncestorClosure<Strategy>::value
                ? epoch.reads
                : all_reads_;
        stats_.maintain_gate_wait_seconds += gate_.BeginMaintain(reads);
        stream_internal::MaintainEpoch(strategy_, &epoch);
        gate_.EndMaintain(reads);
      } else {
        stream_internal::MaintainEpoch(strategy_, &epoch);
      }
      maintained_epochs_.store(epoch.id + 1, std::memory_order_relaxed);
      stats_.apply_seconds += timer.Seconds();
      const double latency =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        epoch.sealed_at)
              .count();
      latency_sum_ += latency;
      stats_.epoch_latency_max_seconds =
          std::max(stats_.epoch_latency_max_seconds, latency);
    }
  }

  ShadowDb* shadow_;
  Strategy* strategy_;
  StreamOptions options_;
  EpochAssembler assembler_;  // assemble thread only (after construction)
  stream_internal::BoundedChannel<UpdateBatch> ingress_;
  stream_internal::BoundedChannel<StreamEpoch> sealed_;
  stream_internal::BoundedChannel<StreamEpoch> committed_;
  stream_internal::CommitGate gate_;
  const std::vector<uint8_t> all_reads_;  // whole-db read set (all ones)
  std::atomic<uint64_t> maintained_epochs_{0};
  // Stats fields are partitioned by writer: batches/rows belong to the
  // assemble thread, commit_* to whichever thread commits (the commit
  // thread with overlap on, the apply thread with it off — never both in
  // one run), the rest to the apply thread; Finish reads them after
  // joining all three, so no field is ever accessed from two live
  // threads.
  StreamStats stats_;
  double latency_sum_ = 0;
  std::thread assemble_thread_;
  std::thread commit_thread_;
  std::thread apply_thread_;
  bool finished_ = false;
};

// Streams `stream` through an async scheduler and finishes. The common
// entry point the IVM strategies share.
template <typename Strategy>
StreamStats ApplyStream(ShadowDb* shadow, Strategy* strategy,
                        const std::vector<UpdateBatch>& stream,
                        const StreamOptions& options = {}) {
  StreamScheduler<Strategy> scheduler(shadow, strategy, options);
  for (const UpdateBatch& batch : stream) scheduler.Push(batch);
  return scheduler.Finish();
}

// Serial reference: the same epochs committed and maintained on the
// caller's thread with no queues or worker threads. StreamScheduler
// results are bit-identical to this for any thread count and any commit
// run-ahead; with options.epoch_batches == 1 this is in turn bit-identical
// to the classic append-then-ApplyBatch loop.
template <typename Strategy>
StreamStats ReplayStream(ShadowDb* shadow, Strategy* strategy,
                         const std::vector<UpdateBatch>& stream,
                         const StreamOptions& options = {}) {
  EpochAssembler assembler(shadow, options);
  StreamStats stats;
  StreamEpoch epoch;
  auto apply = [&] {
    WallTimer timer;
    stats.epochs++;
    stats.ranges += epoch.ranges.size();
    stream_internal::CommitEpoch(shadow, &epoch);
    stream_internal::MaintainEpoch(strategy, &epoch);
    stats.apply_seconds += timer.Seconds();
    epoch = StreamEpoch();
  };
  for (const UpdateBatch& batch : stream) {
    stats.batches++;
    stats.rows += batch.rows.size();
    if (assembler.Add(batch, &epoch)) apply();
  }
  if (assembler.Flush(&epoch)) apply();
  return stats;
}

}  // namespace relborg

#endif  // RELBORG_STREAM_STREAM_SCHEDULER_H_
