// Epoch-consistent checkpointing of stream pipeline state.
//
// A checkpoint captures, at one epoch boundary (the applier's observer
// point — see StreamEpochObserver), everything needed to rebuild a
// scheduler that is BIT-IDENTICAL to the uninterrupted run after replaying
// the post-checkpoint tail of the stream:
//
//   * the committed ShadowDb prefix under the epoch's per-node watermark —
//     every row's column values and multiplicity sign (restore re-stages
//     and re-commits them, which rebuilds the join-index fragments
//     deterministically: per-key index vectors hold row ids in append
//     order either way);
//   * the strategy's view state, serialized BYTE-EXACT by the strategy
//     itself (SaveCheckpoint/LoadCheckpoint) — view payloads are IEEE-754
//     images, never recomputed at load time, because the coalesced folds
//     that produced them are a different summation order than any replay;
//   * the scheduler's structural cursor (epochs/batches/rows consumed,
//     per-node watermark) so the restored assembler seals the tail into
//     exactly the epochs the uninterrupted run would have formed.
//
// FILE FORMAT: an 8-byte magic ("RBCKPT01", bumped on layout changes),
// u64 payload size, u64 FNV-1a checksum of the payload, then the payload.
// The file is written to `<path>.tmp` and atomically renamed, so a crash
// mid-write (including the injected pre-checkpoint-fsync fault) leaves
// either the previous complete checkpoint or none — never a torn one that
// parses. ReadCheckpointFile distinguishes "no checkpoint" (kNotFound:
// restore from scratch) from "corrupt checkpoint" (kDataLoss: surfaced,
// never silently ignored).
#ifndef RELBORG_STREAM_CHECKPOINT_H_
#define RELBORG_STREAM_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ivm/shadow_db.h"
#include "util/serde.h"
#include "util/status.h"

namespace relborg {

struct StreamCheckpointOptions {
  // Target file. Empty disables checkpointing.
  std::string path;
  // Write a checkpoint after every K maintained epochs (0 disables).
  size_t every_epochs = 0;
  // fsync the tmp file before the atomic rename. Off is faster and fine
  // for tests (rename alone orders against same-process reads); on is the
  // durable default.
  bool fsync = true;
};

// The scheduler-level header of a checkpoint: how much of the stream the
// checkpointed state covers. `epochs`/`batches`/`rows` are the structural
// counters at the boundary; a caller resuming a recorded stream re-pushes
// batches [batches, end) — epochs never split batches, so the boundary is
// always a whole-batch position.
struct StreamCheckpointInfo {
  uint64_t epochs = 0;
  uint64_t batches = 0;
  uint64_t rows = 0;
  uint64_t ranges = 0;
  std::vector<size_t> watermark;  // per node: committed rows at the boundary
};

uint64_t Fnv1a64(const uint8_t* data, size_t size);

void SerializeStreamCheckpointInfo(const StreamCheckpointInfo& info,
                                   ByteSink* sink);
StreamCheckpointInfo DeserializeStreamCheckpointInfo(ByteSource* src);

// Serializes rows [0, watermark[v]) of every node: column values (via the
// exact double round-trip — categorical int32 codes survive the cast both
// ways) plus per-row multiplicity signs.
void SerializeShadowDbPrefix(const ShadowDb& db,
                             const std::vector<size_t>& watermark,
                             ByteSink* sink);

// Re-stages and commits the serialized prefix into `db`, which must be
// FRESH (zero committed rows everywhere) and built over the same catalog;
// arity mismatches and short payloads surface as Status, never abort.
Status RestoreShadowDbPrefix(ByteSource* src, ShadowDb* db);

// Writes magic + framing + payload to `<path>.tmp`, optionally fsyncs,
// then atomically renames onto `path`. Contains the
// "stream/pre-checkpoint-fsync" fault site: when it fires, the tmp file is
// left behind un-renamed (a torn checkpoint that never becomes visible)
// and the write reports kAborted.
Status WriteCheckpointFile(const std::string& path, const ByteSink& sink,
                           bool do_fsync, size_t* bytes_out = nullptr);

// Reads and verifies a checkpoint file: kNotFound when absent, kDataLoss
// on bad magic / size mismatch / checksum mismatch.
Status ReadCheckpointFile(const std::string& path,
                          std::vector<uint8_t>* payload);

}  // namespace relborg

#endif  // RELBORG_STREAM_CHECKPOINT_H_
