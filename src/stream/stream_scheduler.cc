#include "stream/stream_scheduler.h"

#include "core/exec_policy.h"

namespace relborg {

EpochAssembler::EpochAssembler(const ShadowDb* db,
                               const StreamOptions& options)
    : db_(db), options_(options) {
  const int num_nodes = db->tree().num_nodes();
  group_of_ = ViewGroupOf(db->tree());
  next_row_.resize(num_nodes);
  pending_of_.assign(num_nodes, -1);
  // Snapshot the current relation sizes once, before any pipeline thread
  // exists; from here on row ids are tracked locally so staging never
  // reads the (concurrently mutated) relations.
  for (int v = 0; v < num_nodes; ++v) {
    next_row_[v] = db->relation(v).num_rows();
  }
}

bool EpochAssembler::Add(UpdateBatch batch, StreamEpoch* out) {
  if (!batch.rows.empty()) {
    RELBORG_CHECK(batch.node >= 0 &&
                  batch.node < static_cast<int>(group_of_.size()));
    const size_t batch_rows = batch.rows.size();
    int idx = pending_of_[batch.node];
    if (idx < 0) {
      idx = static_cast<int>(pending_.size());
      pending_of_[batch.node] = idx;
      pending_.emplace_back();
      pending_[idx].node = batch.node;
    }
    Pending& pending = pending_[idx];
    for (auto& row : batch.rows) pending.rows.push_back(std::move(row));
    pending.signs.insert(pending.signs.end(), batch_rows, batch.sign);
    cur_rows_ += batch_rows;
  }
  // Empty batches contribute no range but still count toward the batch
  // bound, so a stream tail of retract-everything no-ops can seal (and the
  // scheduler apply) zero-range epochs.
  cur_batches_ += 1;
  if (cur_rows_ >= options_.epoch_rows ||
      cur_batches_ >= options_.epoch_batches) {
    Seal(out);
    return true;
  }
  return false;
}

bool EpochAssembler::Flush(StreamEpoch* out) {
  if (pending_.empty() && cur_batches_ == 0) return false;
  Seal(out);
  return true;
}

void EpochAssembler::Seal(StreamEpoch* out) {
  *out = StreamEpoch();
  out->id = next_epoch_id_++;
  out->rows = cur_rows_;
  out->batches = cur_batches_;
  out->reads.assign(group_of_.size(), 0);
  // Canonical order: deepest view group first, ascending node id within a
  // group — one range per node, so the sort key is unique.
  std::sort(pending_.begin(), pending_.end(),
            [&](const Pending& a, const Pending& b) {
              if (group_of_[a.node] != group_of_[b.node]) {
                return group_of_[a.node] < group_of_[b.node];
              }
              return a.node < b.node;
            });
  out->ranges.reserve(pending_.size());
  for (Pending& pending : pending_) {
    StreamRange range;
    range.group = group_of_[pending.node];
    range.chunk =
        db_->StageRows(pending.node, std::move(pending.rows),
                       std::move(pending.signs), next_row_[pending.node]);
    next_row_[pending.node] += range.chunk.num_rows();
    // The range's visibility horizon: per-node staged totals so far —
    // bit-for-bit the committed watermarks of the serial replay right
    // after this range's commit (epochs stage, commit and maintain
    // strictly in order, and next_row_ never includes later epochs here).
    range.visible.assign(next_row_.begin(), next_row_.end());
    // Maintenance of this range reads its node and (through upward
    // propagation) the node's ancestors.
    MarkAncestorClosure(db_->tree(), pending.node, &out->reads);
    pending_of_[pending.node] = -1;
    out->ranges.push_back(std::move(range));
  }
  pending_.clear();
  cur_rows_ = 0;
  cur_batches_ = 0;
  out->sealed_at = std::chrono::steady_clock::now();
}

}  // namespace relborg
