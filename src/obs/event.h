// Structured diagnostic events: a single formatted record built from
// key=value fields plus an optional multi-line detail block (e.g. the trace
// tail), emitted atomically with one stderr write. Replaces ad-hoc
// interleaved fprintf diagnostics (stall watchdog, quarantine overflow).
#ifndef RELBORG_OBS_EVENT_H_
#define RELBORG_OBS_EVENT_H_

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>

namespace relborg {
namespace obs {

// Builder for one `[relborg] kind key=value ...` record. Fields appear in
// insertion order; Render() returns the full record text ending in '\n'.
class StructuredEvent {
 public:
  explicit StructuredEvent(const char* kind) : kind_(kind) {}

  StructuredEvent& Add(const char* key, int64_t value) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%" PRId64, value);
    return AddRaw(key, buf);
  }
  StructuredEvent& Add(const char* key, uint64_t value) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    return AddRaw(key, buf);
  }
  StructuredEvent& Add(const char* key, double value) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return AddRaw(key, buf);
  }
  StructuredEvent& Add(const char* key, const std::string& value) {
    return AddRaw(key, value.c_str());
  }

  // Appends an indented multi-line block after the key=value line, prefixed
  // by `title:`. Empty detail blocks are skipped.
  StructuredEvent& Detail(const char* title, const std::string& block) {
    if (block.empty()) return *this;
    detail_ += "  ";
    detail_ += title;
    detail_ += ":\n";
    detail_ += block;
    if (detail_.back() != '\n') detail_ += '\n';
    return *this;
  }

  std::string Render() const {
    std::string out = "[relborg] ";
    out += kind_;
    out += fields_;
    out += '\n';
    out += detail_;
    return out;
  }

  // Writes the whole record to stderr with a single fputs (no interleaving
  // with other threads' records).
  void EmitToStderr() const {
    const std::string record = Render();
    std::fputs(record.c_str(), stderr);
    std::fflush(stderr);
  }

 private:
  StructuredEvent& AddRaw(const char* key, const char* value) {
    fields_ += ' ';
    fields_ += key;
    fields_ += '=';
    fields_ += value;
    return *this;
  }

  const char* kind_;
  std::string fields_;
  std::string detail_;
};

}  // namespace obs
}  // namespace relborg

#endif  // RELBORG_OBS_EVENT_H_
