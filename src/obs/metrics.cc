#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "util/check.h"

namespace relborg {
namespace obs {

double Histogram::BucketBound(int i) {
  if (i >= kFiniteBuckets) return INFINITY;
  return std::ldexp(1.0, kMinExp + i);
}

int Histogram::BucketIndex(double v) {
  if (!(v > 0.0)) return 0;  // non-positive and NaN land in the first bucket
  int exp = 0;
  const double m = std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
  if (m == 0.5) --exp;  // exact powers of two belong in their own bucket (le)
  int idx = exp - kMinExp;
  if (idx < 0) idx = 0;
  if (idx > kFiniteBuckets) idx = kFiniteBuckets;  // overflow -> +Inf bucket
  return idx;
}

double Histogram::Quantile(double q) const {
  const uint64_t total = Count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // The walk must stop at the lowest POPULATED bucket: a raw `q * total`
  // target of 0 (q == 0, or any q that rounds below the empty leading
  // buckets' cumulative count of 0) would satisfy `cum >= target` on the
  // very first bucket even when it holds no observations, reporting bucket
  // 0's bound for data that never touched it. Clamping the target to the
  // first observation's rank fixes q == 0 to "the minimum's bucket" while
  // leaving every populated-bucket quantile unchanged.
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(total))));
  uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cum += BucketCount(i);
    if (cum >= target) {
      const double bound = BucketBound(i);
      // Clamp the +Inf bucket to the largest finite bound for reporting.
      return std::isinf(bound) ? BucketBound(kFiniteBuckets - 1) : bound;
    }
  }
  return BucketBound(kFiniteBuckets - 1);
}

void Histogram::MergeFrom(const Histogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    const uint64_t n = other.BucketCount(i);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  sum_.Add(other.Sum());
  count_.fetch_add(other.Count(), std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = Kind::kCounter;
    e.help = help;
    e.counter.reset(new Counter());
    it = entries_.emplace(name, std::move(e)).first;
  }
  RELBORG_CHECK_MSG(it->second.kind == Kind::kCounter, name.c_str());
  return it->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = Kind::kGauge;
    e.help = help;
    e.gauge.reset(new Gauge());
    it = entries_.emplace(name, std::move(e)).first;
  }
  RELBORG_CHECK_MSG(it->second.kind == Kind::kGauge, name.c_str());
  return it->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = Kind::kHistogram;
    e.help = help;
    e.histogram.reset(new Histogram());
    it = entries_.emplace(name, std::move(e)).first;
  }
  RELBORG_CHECK_MSG(it->second.kind == Kind::kHistogram, name.c_str());
  return it->second.histogram.get();
}

Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != Kind::kCounter) return nullptr;
  return it->second.counter.get();
}

Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != Kind::kGauge) return nullptr;
  return it->second.gauge.get();
}

Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != Kind::kHistogram)
    return nullptr;
  return it->second.histogram.get();
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& src,
                                const std::string& suffix) {
  // Snapshot src's entries first; taking both mutexes at once would order
  // them (and a self-merge would deadlock).
  struct Snap {
    std::string name;
    Kind kind;
    std::string help;
    double value = 0;                    // counter / gauge
    const Histogram* histogram = nullptr;  // stable for src's lifetime
  };
  std::vector<Snap> snaps;
  {
    std::lock_guard<std::mutex> lock(src.mu_);
    snaps.reserve(src.entries_.size());
    for (const auto& kv : src.entries_) {
      Snap s;
      s.name = kv.first;
      s.kind = kv.second.kind;
      s.help = kv.second.help;
      switch (kv.second.kind) {
        case Kind::kCounter:
          s.value = kv.second.counter->Value();
          break;
        case Kind::kGauge:
          s.value = kv.second.gauge->Value();
          break;
        case Kind::kHistogram:
          s.histogram = kv.second.histogram.get();
          break;
      }
      snaps.push_back(std::move(s));
    }
  }
  for (const Snap& s : snaps) {
    switch (s.kind) {
      case Kind::kCounter: {
        GetCounter(s.name, s.help)->Inc(s.value);
        if (!suffix.empty()) GetCounter(s.name + suffix, s.help)->Inc(s.value);
        break;
      }
      case Kind::kGauge: {
        GetGauge(s.name, s.help)->SetMax(s.value);
        if (!suffix.empty()) GetGauge(s.name + suffix, s.help)->Set(s.value);
        break;
      }
      case Kind::kHistogram: {
        GetHistogram(s.name, s.help)->MergeFrom(*s.histogram);
        if (!suffix.empty()) {
          GetHistogram(s.name + suffix, s.help)->MergeFrom(*s.histogram);
        }
        break;
      }
    }
  }
}

namespace {

void AppendNumber(std::string* out, double v) {
  if (std::isinf(v)) {
    out->append(v > 0 ? "+Inf" : "-Inf");
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

}  // namespace

std::string MetricsRegistry::ExpositionText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& kv : entries_) {
    const std::string& name = kv.first;
    const Entry& e = kv.second;
    out += "# HELP " + name + " " + e.help + "\n";
    switch (e.kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " ";
        AppendNumber(&out, e.counter->Value());
        out += "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " ";
        AppendNumber(&out, e.gauge->Value());
        out += "\n";
        break;
      case Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        uint64_t cum = 0;
        for (int i = 0; i < Histogram::kBuckets; ++i) {
          cum += e.histogram->BucketCount(i);
          out += name + "_bucket{le=\"";
          AppendNumber(&out, Histogram::BucketBound(i));
          out += "\"} ";
          AppendNumber(&out, static_cast<double>(cum));
          out += "\n";
        }
        out += name + "_sum ";
        AppendNumber(&out, e.histogram->Sum());
        out += "\n";
        out += name + "_count ";
        AppendNumber(&out, static_cast<double>(e.histogram->Count()));
        out += "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace relborg
