// Lock-free per-thread trace ring buffers with Chrome trace_event export.
//
// Recording model:
//  - A `TraceRecorder` owns one ring buffer (`ThreadLog`) per registered
//    thread. Threads register once (mutex) via `ThreadTraceScope`; recording a
//    span afterwards is wait-free: fill a slot with relaxed atomic stores and
//    publish it with a release store of the log head.
//  - `TraceSpan` / `RELBORG_TRACE_SPAN` read a thread_local pointer to the
//    current thread's log. When no recorder is installed the pointer is null
//    and the span is a no-op (one TLS load + branch). Compiling with
//    -DRELBORG_OBS_NO_TRACE makes the macro expand to nothing.
//  - Event slots store every field as a relaxed std::atomic so that the
//    watchdog's tolerated-racy tail read is data-race-free under TSan.
//    Exact (non-racy) export requires quiescence: call ExportChromeJson /
//    TailString only while recording threads are between spans or joined —
//    the ring head's release store pairs with the reader's acquire load, so
//    every published slot is fully visible.
//  - Rings overwrite the oldest events when full; `dropped()` counts
//    overwritten slots. Names and categories must be string literals (or
//    otherwise outlive the recorder): only the pointer is stored.
//
// Timebase: std::chrono::steady_clock nanoseconds relative to the recorder's
// construction, converted to microseconds in the Chrome export.
#ifndef RELBORG_OBS_TRACE_H_
#define RELBORG_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace relborg {
namespace obs {

struct TraceEvent {
  const char* name = nullptr;   // string literal
  const char* cat = nullptr;    // string literal ("stage", "ivm", "serve"...)
  int64_t epoch = -1;           // -1 when not epoch-scoped
  int32_t node = -1;            // -1 when not node-scoped
  uint64_t start_ns = 0;        // offset from recorder t0
  uint64_t end_ns = 0;
};

class TraceRecorder;

namespace trace_internal {

// One ring buffer, written by exactly one thread, racily readable by others.
class ThreadLog {
 public:
  explicit ThreadLog(std::string thread_name, uint32_t capacity);

  void Record(const char* name, const char* cat, int64_t epoch, int32_t node,
              uint64_t start_ns, uint64_t end_ns);

  const std::string& thread_name() const { return name_; }
  uint64_t dropped() const;

  // Copies the published slots in record order (oldest first). Exact only at
  // quiescence; see file comment.
  void Snapshot(std::vector<TraceEvent>* out) const;

 private:
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<const char*> cat{nullptr};
    std::atomic<int64_t> epoch{-1};
    std::atomic<int32_t> node{-1};
    std::atomic<uint64_t> start_ns{0};
    std::atomic<uint64_t> end_ns{0};
  };

  std::string name_;
  uint32_t capacity_;                  // power of two
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> head_{0};      // next sequence number to write
};

}  // namespace trace_internal

// Owns the per-thread logs and the recording timebase.
class TraceRecorder {
 public:
  static constexpr uint32_t kDefaultCapacity = 1u << 14;

  explicit TraceRecorder(uint32_t capacity_per_thread = kDefaultCapacity);

  // Registers a ring for `thread_name` (takes the registration mutex; call
  // once per thread, normally via ThreadTraceScope). The returned log is
  // owned by the recorder and valid for its lifetime.
  trace_internal::ThreadLog* RegisterThread(const std::string& thread_name);

  // Nanoseconds since recorder construction (steady clock).
  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
  }

  // Chrome trace_event JSON ({"traceEvents":[...]}), loadable in
  // chrome://tracing and Perfetto. Exact only at quiescence.
  std::string ExportChromeJson() const;

  // Human-readable dump of the most recent `n` events across all threads
  // (merged by start time), for the stall watchdog. Tolerates concurrent
  // recording (may show torn or missing slots, never invalid memory).
  std::string TailString(size_t n) const;

  // Total events overwritten across all rings.
  uint64_t dropped() const;
  size_t thread_count() const;

  // Process-unique recorder id (for the thread-local registration cache:
  // an address can be reused by a later recorder, an id cannot).
  uint64_t id() const { return id_; }

 private:
  std::chrono::steady_clock::time_point t0_;
  uint64_t id_;
  uint32_t capacity_;
  mutable std::mutex mu_;  // guards logs_ registration
  std::vector<std::unique_ptr<trace_internal::ThreadLog>> logs_;
};

namespace trace_internal {
// The current thread's log, set by ThreadTraceScope. Null => tracing off.
extern thread_local ThreadLog* g_thread_log;
extern thread_local TraceRecorder* g_thread_recorder;
// Per-thread registration cache: a thread that repeatedly opens scopes on
// the SAME recorder (serve threads open one per read transaction) reuses
// its ring instead of registering a new one each time. Keyed by recorder id
// rather than address so a recorder reallocated at the same address cannot
// alias a stale log pointer.
struct ThreadLogCache {
  uint64_t recorder_id = 0;  // 0 = empty (ids start at 1)
  ThreadLog* log = nullptr;
};
extern thread_local ThreadLogCache g_log_cache;
}  // namespace trace_internal

// Installs `recorder` as the current thread's trace sink for the scope's
// lifetime (registering a ring named `thread_name` on first use by this
// thread; later scopes on the same recorder reuse the ring). Passing a null
// recorder leaves tracing disabled — callers do not need to branch.
class ThreadTraceScope {
 public:
  ThreadTraceScope(TraceRecorder* recorder, const char* thread_name)
      : prev_log_(trace_internal::g_thread_log),
        prev_recorder_(trace_internal::g_thread_recorder) {
    trace_internal::g_thread_recorder = recorder;
    if (recorder == nullptr) {
      trace_internal::g_thread_log = nullptr;
    } else if (trace_internal::g_log_cache.recorder_id == recorder->id()) {
      trace_internal::g_thread_log = trace_internal::g_log_cache.log;
    } else {
      trace_internal::g_thread_log = recorder->RegisterThread(thread_name);
      trace_internal::g_log_cache = {recorder->id(),
                                     trace_internal::g_thread_log};
    }
  }
  ~ThreadTraceScope() {
    trace_internal::g_thread_log = prev_log_;
    trace_internal::g_thread_recorder = prev_recorder_;
  }

  ThreadTraceScope(const ThreadTraceScope&) = delete;
  ThreadTraceScope& operator=(const ThreadTraceScope&) = delete;

 private:
  trace_internal::ThreadLog* prev_log_;
  TraceRecorder* prev_recorder_;
};

#ifndef RELBORG_OBS_NO_TRACE

// RAII span: records [construction, destruction) into the current thread's
// ring. No-op (one TLS load) when no recorder is installed on this thread.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* cat, int64_t epoch = -1,
            int32_t node = -1)
      : log_(trace_internal::g_thread_log),
        name_(name),
        cat_(cat),
        epoch_(epoch),
        node_(node),
        start_ns_(log_ ? trace_internal::g_thread_recorder->NowNs() : 0) {}

  ~TraceSpan() { End(); }

  // Records the span now and disarms the destructor (for spans that must
  // close before the enclosing scope does).
  void End() {
    if (log_) {
      log_->Record(name_, cat_, epoch_, node_,
                   start_ns_, trace_internal::g_thread_recorder->NowNs());
      log_ = nullptr;
    }
  }

  // Adjusts the epoch/node labels after construction (for loops that learn
  // the epoch id mid-span).
  void set_epoch(int64_t epoch) { epoch_ = epoch; }
  void set_node(int32_t node) { node_ = node; }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  trace_internal::ThreadLog* log_;
  const char* name_;
  const char* cat_;
  int64_t epoch_;
  int32_t node_;
  uint64_t start_ns_;
};

// Records an instantaneous (zero-length) event on the current thread.
inline void TraceInstant(const char* name, const char* cat, int64_t epoch = -1,
                         int32_t node = -1) {
  trace_internal::ThreadLog* log = trace_internal::g_thread_log;
  if (log) {
    const uint64_t now = trace_internal::g_thread_recorder->NowNs();
    log->Record(name, cat, epoch, node, now, now);
  }
}

// True when the calling thread currently has a trace sink installed.
inline bool TraceEnabledOnThisThread() {
  return trace_internal::g_thread_log != nullptr;
}

#else  // RELBORG_OBS_NO_TRACE: spans compile to nothing.

class TraceSpan {
 public:
  TraceSpan(const char*, const char*, int64_t = -1, int32_t = -1) {}
  void End() {}
  void set_epoch(int64_t) {}
  void set_node(int32_t) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

inline void TraceInstant(const char*, const char*, int64_t = -1,
                         int32_t = -1) {}
inline bool TraceEnabledOnThisThread() { return false; }

#endif  // RELBORG_OBS_NO_TRACE

}  // namespace obs
}  // namespace relborg

// Span macro with the same compile-time kill switch: -DRELBORG_OBS_NO_TRACE
// turns every RELBORG_TRACE_SPAN into nothing (no TLS load, no object).
#ifdef RELBORG_OBS_NO_TRACE
#define RELBORG_TRACE_SPAN(name, cat, epoch, node) \
  do {                                             \
  } while (0)
#define RELBORG_TRACE_INSTANT(name, cat, epoch, node) \
  do {                                                \
  } while (0)
#else
#define RELBORG_OBS_CONCAT_INNER(a, b) a##b
#define RELBORG_OBS_CONCAT(a, b) RELBORG_OBS_CONCAT_INNER(a, b)
#define RELBORG_TRACE_SPAN(name, cat, epoch, node)                     \
  ::relborg::obs::TraceSpan RELBORG_OBS_CONCAT(relborg_trace_span_,    \
                                               __LINE__)(name, cat,    \
                                                         epoch, node)
#define RELBORG_TRACE_INSTANT(name, cat, epoch, node) \
  ::relborg::obs::TraceInstant(name, cat, epoch, node)
#endif

#endif  // RELBORG_OBS_TRACE_H_
