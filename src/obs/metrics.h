// Metrics registry: Counter / Gauge / Histogram instruments with a
// Prometheus-style text exposition format.
//
// Design constraints (see docs/OBSERVABILITY.md):
//  - Instruments are cheap, lock-free atomics on the hot path; the registry
//    mutex is taken only at registration / exposition time.
//  - Handles returned by the registry are stable for the registry's lifetime
//    (instruments live in node-based containers, never move).
//  - Counter/Histogram sums are double-valued and accumulated with a CAS
//    loop, so a single-writer instrument produces the exact same floating
//    point total as the plain `double +=` accumulation it replaces. This is
//    what lets `StreamStats` be re-derived from the registry bit-for-bit.
#ifndef RELBORG_OBS_METRICS_H_
#define RELBORG_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace relborg {
namespace obs {

// Atomic double with add/max support. C++17 has no fetch_add for
// std::atomic<double>, so both use a compare-exchange loop.
class AtomicDouble {
 public:
  AtomicDouble() : bits_(0) {}

  double Load() const {
    return FromBits(bits_.load(std::memory_order_relaxed));
  }

  void Store(double v) {
    bits_.store(ToBits(v), std::memory_order_relaxed);
  }

  void Add(double delta) {
    uint64_t old = bits_.load(std::memory_order_relaxed);
    for (;;) {
      const uint64_t desired = ToBits(FromBits(old) + delta);
      if (bits_.compare_exchange_weak(old, desired, std::memory_order_relaxed))
        return;
    }
  }

  void Max(double v) {
    uint64_t old = bits_.load(std::memory_order_relaxed);
    while (FromBits(old) < v) {
      if (bits_.compare_exchange_weak(old, ToBits(v),
                                      std::memory_order_relaxed))
        return;
    }
  }

 private:
  static uint64_t ToBits(double v) {
    uint64_t b;
    static_assert(sizeof(b) == sizeof(v), "double must be 64-bit");
    __builtin_memcpy(&b, &v, sizeof(b));
    return b;
  }
  static double FromBits(uint64_t b) {
    double v;
    __builtin_memcpy(&v, &b, sizeof(v));
    return v;
  }

  std::atomic<uint64_t> bits_;
};

// Monotonically increasing value (events, rows, bytes...).
class Counter {
 public:
  void Inc(double delta = 1.0) { value_.Add(delta); }
  double Value() const { return value_.Load(); }

 private:
  AtomicDouble value_;
};

// Last-written or max-tracked value (high-water marks, run-ahead depths).
class Gauge {
 public:
  void Set(double v) { value_.Store(v); }
  void SetMax(double v) { value_.Max(v); }
  double Value() const { return value_.Load(); }

 private:
  AtomicDouble value_;
};

// Log2-bucketed histogram for latency-style observations.
//
// Bucket k (0-based) has upper bound 2^(kMinExp + k) in the observed unit
// (seconds for latencies); the final bucket is +Inf. With kMinExp = -20 the
// smallest bound is ~0.95us and with 30 finite buckets the largest finite
// bound is 2^9 = 512s — wide enough for everything the pipeline observes.
class Histogram {
 public:
  static constexpr int kMinExp = -20;
  static constexpr int kFiniteBuckets = 30;  // bounds 2^-20 .. 2^9
  static constexpr int kBuckets = kFiniteBuckets + 1;  // + the +Inf bucket

  void Observe(double v) {
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.Add(v);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  double Sum() const { return sum_.Load(); }
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  // Upper bound of bucket i; +Inf for the last bucket.
  static double BucketBound(int i);

  // Approximate quantile (q in [0,1]) assuming observations sit at their
  // bucket's upper bound. Returns 0 when the histogram is empty; otherwise
  // the walk stops at the lowest POPULATED bucket (q = 0 reports the
  // minimum observation's bucket bound, never an empty leading bucket's).
  double Quantile(double q) const;

  // Folds another histogram's buckets, sum and count into this one
  // (bucket-wise addition — exact, since bucket counts are integers).
  // Snapshot-in-time with respect to concurrent Observe calls on `other`.
  void MergeFrom(const Histogram& other);

  static int BucketIndex(double v);

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  AtomicDouble sum_;
  std::atomic<uint64_t> count_{0};
};

// Named instrument registry. Get* registers on first use and returns the
// existing instrument on later calls (idempotent; it is an error to reuse a
// name with a different instrument kind). Pointers remain valid for the
// registry's lifetime.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name, const std::string& help);
  Gauge* GetGauge(const std::string& name, const std::string& help);
  Histogram* GetHistogram(const std::string& name, const std::string& help);

  // nullptr when the name is unknown or registered as a different kind.
  Counter* FindCounter(const std::string& name) const;
  Gauge* FindGauge(const std::string& name) const;
  Histogram* FindHistogram(const std::string& name) const;

  // Prometheus text exposition (# HELP / # TYPE, histogram _bucket/_sum/
  // _count series). Safe to call concurrently with instrument updates.
  std::string ExpositionText() const;

  // Folds every instrument of `src` into this registry: under its original
  // name as a cross-source AGGREGATE (counters add, gauges keep the max,
  // histograms add bucket-wise) and — when `suffix` is non-empty — under
  // `name + suffix` as a per-source copy (the sharded scheduler passes
  // "_shard<i>", so one exposition carries both the fleet totals and the
  // shard-labeled series). Values are snapshot-in-time; call into a fresh
  // registry per exposition, since repeating a merge re-adds counters.
  void MergeFrom(const MetricsRegistry& src, const std::string& suffix = "");

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    // Exactly one of these is non-null, owned by the Entry.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  // std::map: node-based (stable Entry addresses) and sorted exposition.
  std::map<std::string, Entry> entries_;
};

}  // namespace obs
}  // namespace relborg

#endif  // RELBORG_OBS_METRICS_H_
