#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace relborg {
namespace obs {

namespace trace_internal {

thread_local ThreadLog* g_thread_log = nullptr;
thread_local TraceRecorder* g_thread_recorder = nullptr;
thread_local ThreadLogCache g_log_cache;

namespace {
uint32_t RoundUpPow2(uint32_t v) {
  uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

ThreadLog::ThreadLog(std::string thread_name, uint32_t capacity)
    : name_(std::move(thread_name)),
      capacity_(RoundUpPow2(capacity == 0 ? 1 : capacity)),
      slots_(new Slot[capacity_]) {}

void ThreadLog::Record(const char* name, const char* cat, int64_t epoch,
                       int32_t node, uint64_t start_ns, uint64_t end_ns) {
  const uint64_t seq = head_.load(std::memory_order_relaxed);
  Slot& s = slots_[seq & (capacity_ - 1)];
  s.name.store(name, std::memory_order_relaxed);
  s.cat.store(cat, std::memory_order_relaxed);
  s.epoch.store(epoch, std::memory_order_relaxed);
  s.node.store(node, std::memory_order_relaxed);
  s.start_ns.store(start_ns, std::memory_order_relaxed);
  s.end_ns.store(end_ns, std::memory_order_relaxed);
  // Publish: readers that acquire head >= seq+1 see the slot's fields.
  head_.store(seq + 1, std::memory_order_release);
}

uint64_t ThreadLog::dropped() const {
  const uint64_t seq = head_.load(std::memory_order_acquire);
  return seq > capacity_ ? seq - capacity_ : 0;
}

void ThreadLog::Snapshot(std::vector<TraceEvent>* out) const {
  const uint64_t seq = head_.load(std::memory_order_acquire);
  const uint64_t first = seq > capacity_ ? seq - capacity_ : 0;
  for (uint64_t i = first; i < seq; ++i) {
    const Slot& s = slots_[i & (capacity_ - 1)];
    TraceEvent e;
    e.name = s.name.load(std::memory_order_relaxed);
    e.cat = s.cat.load(std::memory_order_relaxed);
    e.epoch = s.epoch.load(std::memory_order_relaxed);
    e.node = s.node.load(std::memory_order_relaxed);
    e.start_ns = s.start_ns.load(std::memory_order_relaxed);
    e.end_ns = s.end_ns.load(std::memory_order_relaxed);
    if (e.name == nullptr) continue;  // racy read of an unpublished slot
    out->push_back(e);
  }
}

}  // namespace trace_internal

namespace {
std::atomic<uint64_t> g_next_recorder_id{1};
}  // namespace

TraceRecorder::TraceRecorder(uint32_t capacity_per_thread)
    : t0_(std::chrono::steady_clock::now()),
      id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      capacity_(capacity_per_thread) {}

trace_internal::ThreadLog* TraceRecorder::RegisterThread(
    const std::string& thread_name) {
  std::lock_guard<std::mutex> lock(mu_);
  logs_.emplace_back(
      new trace_internal::ThreadLog(thread_name, capacity_));
  return logs_.back().get();
}

uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& log : logs_) total += log->dropped();
  return total;
}

size_t TraceRecorder::thread_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return logs_.size();
}

namespace {

void AppendEscaped(std::string* out, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

std::string TraceRecorder::ExportChromeJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first_event = true;
  char buf[256];
  std::vector<TraceEvent> events;
  for (size_t tid = 0; tid < logs_.size(); ++tid) {
    // Thread-name metadata event (Chrome "M" phase).
    if (!first_event) out.push_back(',');
    first_event = false;
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid + 1) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    AppendEscaped(&out, logs_[tid]->thread_name().c_str());
    out += "\"}}";

    events.clear();
    logs_[tid]->Snapshot(&events);
    for (const TraceEvent& e : events) {
      const double ts_us = static_cast<double>(e.start_ns) / 1e3;
      const double dur_us =
          static_cast<double>(e.end_ns - e.start_ns) / 1e3;
      out.push_back(',');
      out += "{\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(tid + 1) +
             ",\"name\":\"";
      AppendEscaped(&out, e.name);
      out += "\",\"cat\":\"";
      AppendEscaped(&out, e.cat != nullptr ? e.cat : "misc");
      out += "\"";
      std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f", ts_us,
                    dur_us);
      out += buf;
      std::snprintf(buf, sizeof(buf),
                    ",\"args\":{\"epoch\":%" PRId64 ",\"node\":%" PRId32 "}}",
                    e.epoch, e.node);
      out += buf;
    }
  }
  out += "]}";
  return out;
}

std::string TraceRecorder::TailString(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  struct Tagged {
    TraceEvent e;
    const std::string* thread;
  };
  std::vector<Tagged> all;
  std::vector<TraceEvent> events;
  for (const auto& log : logs_) {
    events.clear();
    log->Snapshot(&events);
    // Only the most recent n per thread can make the global tail.
    const size_t take = events.size() > n ? n : events.size();
    for (size_t i = events.size() - take; i < events.size(); ++i) {
      all.push_back(Tagged{events[i], &log->thread_name()});
    }
  }
  std::sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
    return a.e.start_ns < b.e.start_ns;
  });
  if (all.size() > n) all.erase(all.begin(), all.end() - n);
  std::string out;
  char buf[256];
  for (const Tagged& t : all) {
    std::snprintf(buf, sizeof(buf),
                  "    [%10.3fms +%8.3fms] %-10s %s/%s epoch=%" PRId64
                  " node=%" PRId32 "\n",
                  static_cast<double>(t.e.start_ns) / 1e6,
                  static_cast<double>(t.e.end_ns - t.e.start_ns) / 1e6,
                  t.thread->c_str(), t.e.cat != nullptr ? t.e.cat : "misc",
                  t.e.name, t.e.epoch, t.e.node);
    out += buf;
  }
  return out;
}

}  // namespace obs
}  // namespace relborg
