// Row-major data matrix: the materialized result of a feature-extraction
// query, i.e. the input the structure-agnostic pipeline hands to its
// learning library.
#ifndef RELBORG_BASELINE_DATA_MATRIX_H_
#define RELBORG_BASELINE_DATA_MATRIX_H_

#include <string>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace relborg {

class DataMatrix {
 public:
  DataMatrix() = default;
  explicit DataMatrix(std::vector<std::string> col_names)
      : col_names_(std::move(col_names)) {}

  int num_cols() const { return static_cast<int>(col_names_.size()); }
  size_t num_rows() const {
    return col_names_.empty() ? 0 : data_.size() / col_names_.size();
  }
  const std::vector<std::string>& col_names() const { return col_names_; }

  const double* Row(size_t i) const { return data_.data() + i * num_cols(); }
  double At(size_t row, int col) const { return data_[row * num_cols() + col]; }

  void AppendRow(const double* values) {
    data_.insert(data_.end(), values, values + num_cols());
  }

  void Reserve(size_t rows) { data_.reserve(rows * num_cols()); }

  size_t ByteSize() const { return data_.size() * sizeof(double); }

  // Fisher-Yates shuffle of whole rows (the "Shuffling" step of Fig. 3).
  void ShuffleRows(Rng* rng);

  int ColIndex(const std::string& name) const {
    for (int i = 0; i < num_cols(); ++i) {
      if (col_names_[i] == name) return i;
    }
    return -1;
  }

 private:
  std::vector<std::string> col_names_;
  std::vector<double> data_;
};

}  // namespace relborg

#endif  // RELBORG_BASELINE_DATA_MATRIX_H_
