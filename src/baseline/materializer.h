// Join materialization: the first step of the structure-agnostic pipeline
// (Fig. 2, top flow). Produces the full data matrix of the feature
// extraction query via hash joins. Also used throughout the test suite as
// the reference implementation that the factorized engines must agree with.
#ifndef RELBORG_BASELINE_MATERIALIZER_H_
#define RELBORG_BASELINE_MATERIALIZER_H_

#include <string>
#include <vector>

#include "baseline/data_matrix.h"
#include "core/feature_map.h"
#include "query/join_tree.h"
#include "query/predicate.h"

namespace relborg {

// A column of the materialized output: any attribute of any relation
// (categorical codes are emitted as doubles).
struct ColumnRef {
  std::string relation;
  std::string attr;
};

// Materializes the join defined by `tree`, emitting the given columns, with
// optional per-node filters. Output row order follows the recursive
// enumeration of the join (deterministic).
DataMatrix MaterializeJoin(const RootedTree& tree,
                           const std::vector<ColumnRef>& columns,
                           const FilterSet& filters = {});

// Convenience: emit exactly the feature-map columns, in feature order.
DataMatrix MaterializeJoin(const RootedTree& tree, const FeatureMap& fm,
                           const FilterSet& filters = {});

// Number of tuples in the join result without materializing it (used to
// report the blow-up factor; computed with the counting ring).
double CountJoin(const RootedTree& tree, const FilterSet& filters = {});

}  // namespace relborg

#endif  // RELBORG_BASELINE_MATERIALIZER_H_
