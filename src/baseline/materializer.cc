#include "baseline/materializer.h"

#include <functional>

#include "util/check.h"
#include "util/flat_hash_map.h"

namespace relborg {
namespace {

struct OutputCol {
  int node;
  int attr;
};

// Shared enumeration machinery for the recursive hash-join expansion.
class JoinEnumerator {
 public:
  JoinEnumerator(const RootedTree& tree, const FilterSet& filters)
      : tree_(tree), filters_(filters), indexes_(tree.num_nodes()) {
    // Build, for every non-root node, an index from its parent-edge key to
    // the (filter-passing) row ids.
    for (int v = 0; v < tree_.num_nodes(); ++v) {
      if (v == tree_.root()) continue;
      const Relation& rel = tree_.relation(v);
      indexes_[v].Reserve(rel.num_rows());
      for (size_t row = 0; row < rel.num_rows(); ++row) {
        if (!Passes(v, row)) continue;
        indexes_[v][tree_.RowKeyToParent(v, row)].push_back(row);
      }
    }
  }

  // Invokes fn(rows) for every tuple of the join, where rows[v] is the row
  // id of node v contributing to the tuple.
  void Enumerate(const std::function<void(const std::vector<size_t>&)>& fn) {
    std::vector<size_t> rows(tree_.num_nodes(), 0);
    const int root = tree_.root();
    const Relation& root_rel = tree_.relation(root);
    for (size_t row = 0; row < root_rel.num_rows(); ++row) {
      if (!Passes(root, row)) continue;
      rows[root] = row;
      ExpandChildren(root, row, 0, &rows, [&] { fn(rows); });
    }
  }

 private:
  bool Passes(int v, size_t row) const {
    if (filters_.empty() || filters_[v].empty()) return true;
    return RowPasses(tree_.relation(v), row, filters_[v]);
  }

  // Enumerates all assignments of the subtrees of children ci.. of node v
  // (whose row is fixed), calling cont() once per complete assignment.
  void ExpandChildren(int v, size_t row, size_t ci, std::vector<size_t>* rows,
                      const std::function<void()>& cont) {
    const auto& children = tree_.node(v).children;
    if (ci == children.size()) {
      cont();
      return;
    }
    int c = children[ci];
    const std::vector<size_t>* matches =
        indexes_[c].Find(tree_.RowKeyToChild(v, c, row));
    if (matches == nullptr) return;
    for (size_t child_row : *matches) {
      (*rows)[c] = child_row;
      ExpandChildren(c, child_row, 0, rows,
                     [&] { ExpandChildren(v, row, ci + 1, rows, cont); });
    }
  }

  const RootedTree& tree_;
  const FilterSet& filters_;
  std::vector<FlatHashMap<std::vector<size_t>>> indexes_;
};

}  // namespace

DataMatrix MaterializeJoin(const RootedTree& tree,
                           const std::vector<ColumnRef>& columns,
                           const FilterSet& filters) {
  std::vector<OutputCol> cols;
  std::vector<std::string> names;
  cols.reserve(columns.size());
  for (const ColumnRef& ref : columns) {
    int node = tree.query().IndexOf(ref.relation);
    int attr = tree.relation(node).schema().MustIndexOf(ref.attr);
    cols.push_back(OutputCol{node, attr});
    names.push_back(ref.relation + "." + ref.attr);
  }
  DataMatrix matrix(std::move(names));
  JoinEnumerator enumerator(tree, filters);
  std::vector<double> scratch(cols.size());
  enumerator.Enumerate([&](const std::vector<size_t>& rows) {
    for (size_t i = 0; i < cols.size(); ++i) {
      scratch[i] = tree.relation(cols[i].node).AsDouble(rows[cols[i].node],
                                                        cols[i].attr);
    }
    matrix.AppendRow(scratch.data());
  });
  return matrix;
}

DataMatrix MaterializeJoin(const RootedTree& tree, const FeatureMap& fm,
                           const FilterSet& filters) {
  std::vector<ColumnRef> columns;
  columns.reserve(fm.num_features());
  for (int f = 0; f < fm.num_features(); ++f) {
    const Relation& rel = tree.relation(fm.NodeOf(f));
    columns.push_back(ColumnRef{rel.name(), rel.schema().attr(fm.AttrOf(f)).name});
  }
  return MaterializeJoin(tree, columns, filters);
}

double CountJoin(const RootedTree& tree, const FilterSet& filters) {
  // Counting pass with scalar payloads: SUM(1) over the join.
  std::vector<FlatHashMap<double>> views(tree.num_nodes());
  for (int v : tree.postorder()) {
    const Relation& rel = tree.relation(v);
    const RootedNode& node = tree.node(v);
    const std::vector<Predicate>* preds =
        filters.empty() ? nullptr : &filters[v];
    for (size_t row = 0; row < rel.num_rows(); ++row) {
      if (preds != nullptr && !preds->empty() &&
          !RowPasses(rel, row, *preds)) {
        continue;
      }
      double m = 1.0;
      bool dangling = false;
      for (int c : node.children) {
        const double* cp = views[c].Find(tree.RowKeyToChild(v, c, row));
        if (cp == nullptr) {
          dangling = true;
          break;
        }
        m *= *cp;
      }
      if (dangling) continue;
      views[v][tree.RowKeyToParent(v, row)] += m;
    }
  }
  const double* result = views[tree.root()].Find(kUnitKey);
  return result == nullptr ? 0.0 : *result;
}

}  // namespace relborg
