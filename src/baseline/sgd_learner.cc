#include "baseline/sgd_learner.h"

#include <cmath>

#include "util/check.h"

namespace relborg {

LinearModel TrainSgd(const DataMatrix& data, int response_col,
                     const SgdOptions& options) {
  const int cols = data.num_cols();
  const size_t rows = data.num_rows();
  RELBORG_CHECK(rows > 0);
  std::vector<int> feats;
  for (int c = 0; c < cols; ++c) {
    if (c != response_col) feats.push_back(c);
  }
  const int p = static_cast<int>(feats.size());

  // Standardization pass (mean / std per column).
  std::vector<double> mean(p, 0.0);
  std::vector<double> scale(p, 0.0);
  double mean_y = 0;
  for (size_t r = 0; r < rows; ++r) {
    const double* row = data.Row(r);
    for (int a = 0; a < p; ++a) mean[a] += row[feats[a]];
    mean_y += row[response_col];
  }
  for (int a = 0; a < p; ++a) mean[a] /= static_cast<double>(rows);
  mean_y /= static_cast<double>(rows);
  for (size_t r = 0; r < rows; ++r) {
    const double* row = data.Row(r);
    for (int a = 0; a < p; ++a) {
      double d = row[feats[a]] - mean[a];
      scale[a] += d * d;
    }
  }
  for (int a = 0; a < p; ++a) {
    scale[a] = std::sqrt(scale[a] / static_cast<double>(rows));
    if (scale[a] < 1e-9) scale[a] = 1.0;
  }

  // Mini-batch SGD in standardized space, accumulating the batch gradient
  // then stepping once per batch.
  std::vector<double> theta(p, 0.0);
  double bias = 0.0;  // predicts y - mean_y
  std::vector<double> grad(p, 0.0);
  double grad_bias = 0.0;
  std::vector<double> x(p);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    size_t in_batch = 0;
    std::fill(grad.begin(), grad.end(), 0.0);
    grad_bias = 0;
    for (size_t r = 0; r < rows; ++r) {
      const double* row = data.Row(r);
      double pred = bias;
      for (int a = 0; a < p; ++a) {
        x[a] = (row[feats[a]] - mean[a]) / scale[a];
        pred += theta[a] * x[a];
      }
      double err = pred - (row[response_col] - mean_y);
      for (int a = 0; a < p; ++a) grad[a] += err * x[a];
      grad_bias += err;
      if (++in_batch == options.batch_size || r + 1 == rows) {
        double inv = 1.0 / static_cast<double>(in_batch);
        for (int a = 0; a < p; ++a) {
          theta[a] -= options.learning_rate *
                      (grad[a] * inv + options.lambda * theta[a]);
          grad[a] = 0;
        }
        bias -= options.learning_rate * grad_bias * inv;
        grad_bias = 0;
        in_batch = 0;
      }
    }
  }

  LinearModel model;
  model.feature_indices = feats;
  model.weights.resize(p);
  double b = mean_y + bias;
  for (int a = 0; a < p; ++a) {
    model.weights[a] = theta[a] / scale[a];
    b -= model.weights[a] * mean[a];
  }
  model.bias = b;
  return model;
}

}  // namespace relborg
