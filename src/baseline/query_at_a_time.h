// Query-at-a-time aggregate evaluation: the stand-in for the commercial
// DBMS baselines of Fig. 4 (left). Real systems evaluate each aggregate of
// a batch as its own query with no cross-aggregate sharing — the paper
// observes LMFAO's speedup over them is "on par with the number of
// aggregates". This baseline is charitable: the join is materialized once
// (not per query) and each aggregate then costs one full scan.
//
// These materialized scans are deliberately kept serial and policy-free:
// together with the legacy serial engine plans they are the canonical
// references that the parallel ExecPolicy plans (core/exec_policy.h) are
// validated against in the property and thread-sweep suites.
#ifndef RELBORG_BASELINE_QUERY_AT_A_TIME_H_
#define RELBORG_BASELINE_QUERY_AT_A_TIME_H_

#include <vector>

#include "baseline/data_matrix.h"
#include "ring/covariance.h"

namespace relborg {

// Computes the covariance batch with one scan per aggregate over a
// materialized matrix whose columns are the features. Returns the same
// matrix the factorized engine produces; `scans_out` (optional) receives
// the number of passes performed.
CovarMatrix CovarByQueryAtATime(const DataMatrix& data,
                                size_t* scans_out = nullptr);

// Computes a decision-node batch (count, sum_y, sumsq_y per candidate
// threshold) with one scan per scalar aggregate. thresholds[i] applies to
// column cols[i]; the response is column y. Returns flattened triples.
std::vector<double> DecisionNodeByQueryAtATime(
    const DataMatrix& data, const std::vector<int>& cols,
    const std::vector<double>& thresholds, int y, size_t* scans_out = nullptr);

}  // namespace relborg

#endif  // RELBORG_BASELINE_QUERY_AT_A_TIME_H_
