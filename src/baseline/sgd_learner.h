// Mini-batch SGD linear regression over a materialized data matrix — the
// stand-in for the "TensorFlow" leg of the Fig. 3 experiment. Matches the
// paper's setup: one epoch (a single pass over the shuffled data matrix)
// with 100K-tuple batches.
#ifndef RELBORG_BASELINE_SGD_LEARNER_H_
#define RELBORG_BASELINE_SGD_LEARNER_H_

#include <vector>

#include "baseline/data_matrix.h"
#include "ml/linear_regression.h"

namespace relborg {

struct SgdOptions {
  int epochs = 1;                // the paper's TensorFlow run uses 1 epoch
  size_t batch_size = 100000;    // 100K-tuple batches, as in Fig. 3
  double learning_rate = 0.05;   // on standardized features
  double lambda = 1e-3;
  uint64_t seed = 42;
};

// Trains on all columns except `response_col` (which is the label). The
// data is standardized internally (mean/std estimated from the matrix —
// an extra data pass, also charged to the baseline in the benchmarks).
// Column c of the matrix is feature index c in the returned model.
LinearModel TrainSgd(const DataMatrix& data, int response_col,
                     const SgdOptions& options = {});

}  // namespace relborg

#endif  // RELBORG_BASELINE_SGD_LEARNER_H_
