#include "baseline/query_at_a_time.h"

#include "util/check.h"

namespace relborg {

CovarMatrix CovarByQueryAtATime(const DataMatrix& data, size_t* scans_out) {
  const int n = data.num_cols();
  const size_t rows = data.num_rows();
  CovarPayload payload = CovarPayload::Zero(n);
  size_t scans = 0;

  // COUNT(*).
  {
    double c = 0;
    for (size_t r = 0; r < rows; ++r) c += 1.0;
    payload.count = c;
    ++scans;
  }
  // SUM(x_i), each in its own pass.
  for (int i = 0; i < n; ++i) {
    double s = 0;
    for (size_t r = 0; r < rows; ++r) s += data.At(r, i);
    payload.sum[i] = s;
    ++scans;
  }
  // SUM(x_i * x_j), each in its own pass.
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      double q = 0;
      for (size_t r = 0; r < rows; ++r) q += data.At(r, i) * data.At(r, j);
      payload.quad[UpperTriIndex(n, i, j)] = q;
      ++scans;
    }
  }
  if (scans_out != nullptr) *scans_out = scans;
  return CovarMatrix(n, std::move(payload));
}

std::vector<double> DecisionNodeByQueryAtATime(
    const DataMatrix& data, const std::vector<int>& cols,
    const std::vector<double>& thresholds, int y, size_t* scans_out) {
  RELBORG_CHECK(cols.size() == thresholds.size());
  const size_t rows = data.num_rows();
  std::vector<double> out;
  out.reserve(3 * cols.size());
  size_t scans = 0;
  for (size_t i = 0; i < cols.size(); ++i) {
    // Three scalar aggregates, each its own scan (as a DBMS would execute
    // three separate filtered aggregate queries).
    double count = 0;
    for (size_t r = 0; r < rows; ++r) {
      if (data.At(r, cols[i]) >= thresholds[i]) count += 1;
    }
    ++scans;
    double sum = 0;
    for (size_t r = 0; r < rows; ++r) {
      if (data.At(r, cols[i]) >= thresholds[i]) sum += data.At(r, y);
    }
    ++scans;
    double sum_sq = 0;
    for (size_t r = 0; r < rows; ++r) {
      if (data.At(r, cols[i]) >= thresholds[i]) {
        sum_sq += data.At(r, y) * data.At(r, y);
      }
    }
    ++scans;
    out.push_back(count);
    out.push_back(sum);
    out.push_back(sum_sq);
  }
  if (scans_out != nullptr) *scans_out = scans;
  return out;
}

}  // namespace relborg
