#include "baseline/data_matrix.h"

#include <algorithm>

namespace relborg {

void DataMatrix::ShuffleRows(Rng* rng) {
  const size_t rows = num_rows();
  const int cols = num_cols();
  if (rows < 2) return;
  std::vector<double> tmp(cols);
  for (size_t i = rows; i > 1; --i) {
    size_t j = rng->Below(i);
    double* a = data_.data() + (i - 1) * cols;
    double* b = data_.data() + j * cols;
    std::copy(a, a + cols, tmp.data());
    std::copy(b, b + cols, a);
    std::copy(tmp.data(), tmp.data() + cols, b);
  }
}

}  // namespace relborg
