#include "util/fault.h"

namespace relborg {

FaultInjector& FaultInjector::Global() {
  static FaultInjector* g = new FaultInjector();  // leaked: process lifetime
  return *g;
}

void FaultInjector::Arm(const std::string& site, uint64_t hit) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_site_ = site;
  armed_hit_ = hit;
  fired_ = false;
  counts_.clear();
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::ArmFromSeed(uint64_t seed) {
  const auto& sites = FaultSites();
  const uint64_t n = sites.size();
  Arm(sites[seed % n], (seed / n) % 4);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_release);
  armed_site_.clear();
  fired_ = false;
  counts_.clear();
}

bool FaultInjector::Fire(const char* site) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_.load(std::memory_order_relaxed)) return false;
  const uint64_t n = counts_[site]++;
  if (fired_ || site != armed_site_ || n != armed_hit_) return false;
  fired_ = true;
  return true;
}

uint64_t FaultInjector::Hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counts_.find(site);
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace relborg
