// Open-addressing hash map from packed uint64 keys to arbitrary payloads.
//
// This is the workhorse container of the view-tree engines: every factorized
// view is a FlatHashMap from a packed join key to a ring payload. It is
// deliberately minimal: linear probing, power-of-two capacity, no erase
// (views only ever accumulate keys; payloads may go to ring-zero but keys
// stay), which keeps probes branch-light and iteration trivial.
#ifndef RELBORG_UTIL_FLAT_HASH_MAP_H_
#define RELBORG_UTIL_FLAT_HASH_MAP_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/packed_key.h"

namespace relborg {

template <typename V>
class FlatHashMap {
 public:
  struct Slot {
    uint64_t key = kEmptyKey;
    V value{};
  };

  FlatHashMap() { Rehash(16); }
  explicit FlatHashMap(size_t expected_size) {
    size_t cap = 16;
    while (cap * 7 < expected_size * 10) cap <<= 1;
    Rehash(cap);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    for (Slot& s : slots_) {
      s.key = kEmptyKey;
      s.value = V{};
    }
    size_ = 0;
  }

  // Returns the payload for key, default-constructing it on first access.
  V& operator[](uint64_t key) {
    RELBORG_DCHECK(key != kEmptyKey);
    if ((size_ + 1) * 10 > slots_.size() * 7) Rehash(slots_.size() * 2);
    size_t i = Probe(key);
    if (slots_[i].key == kEmptyKey) {
      slots_[i].key = key;
      ++size_;
    }
    return slots_[i].value;
  }

  // Returns nullptr if key is absent.
  const V* Find(uint64_t key) const {
    size_t i = Probe(key);
    return slots_[i].key == kEmptyKey ? nullptr : &slots_[i].value;
  }

  V* Find(uint64_t key) {
    size_t i = Probe(key);
    return slots_[i].key == kEmptyKey ? nullptr : &slots_[i].value;
  }

  bool Contains(uint64_t key) const { return Find(key) != nullptr; }

  // Iteration over occupied slots (key order is unspecified).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.key != kEmptyKey) fn(s.key, s.value);
    }
  }

  template <typename Fn>
  void ForEachMutable(Fn&& fn) {
    for (Slot& s : slots_) {
      if (s.key != kEmptyKey) fn(s.key, s.value);
    }
  }

  void Reserve(size_t expected_size) {
    size_t cap = slots_.size();
    while (cap * 7 < expected_size * 10) cap <<= 1;
    if (cap != slots_.size()) Rehash(cap);
  }

 private:
  // Fibonacci (multiply-shift) hashing: a single multiply whose high bits
  // index the power-of-two table. Views are probed in the innermost loop of
  // every engine, so the hash must be as cheap as possible while still
  // scattering the sequential integer keys join attributes produce.
  size_t Bucket(uint64_t key) const {
    return static_cast<size_t>((key * 0x9E3779B97F4A7C15ull) >> shift_);
  }

  size_t Probe(uint64_t key) const {
    size_t mask = slots_.size() - 1;
    size_t i = Bucket(key);
    while (slots_[i].key != kEmptyKey && slots_[i].key != key) {
      i = (i + 1) & mask;
    }
    return i;
  }

  void Rehash(size_t new_cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_cap, Slot{});
    shift_ = 64;
    for (size_t c = new_cap; c > 1; c >>= 1) --shift_;
    size_t mask = slots_.size() - 1;
    for (Slot& s : old) {
      if (s.key == kEmptyKey) continue;
      size_t i = Bucket(s.key);
      while (slots_[i].key != kEmptyKey) i = (i + 1) & mask;
      slots_[i] = std::move(s);
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
  int shift_ = 60;
};

}  // namespace relborg

#endif  // RELBORG_UTIL_FLAT_HASH_MAP_H_
