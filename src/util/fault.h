// Deterministic fault injection for crash-recovery testing.
//
// A FaultInjector holds a registry of NAMED SITES placed at pipeline stage
// boundaries (see kFaultSites below). Each site counts how many times it is
// reached; the injector is armed with a (site, hit) pair and Fire() returns
// true exactly once — when the armed site reaches the armed hit count.
// Because every site lives on a single stage thread, its hit counter is a
// deterministic function of the input stream, so a given (site, hit) names
// one reproducible interleaving point regardless of thread scheduling.
//
// Seeds map onto (site, hit) via ArmFromSeed so CI can sweep the space
// with `RELBORG_FAULT_SEED=$n ctest -L fault`. The injector never arms
// itself from the environment: reference (uninterrupted) runs inside the
// same process must stay clean, so tests read the env var themselves and
// arm only the run meant to crash.
//
// Production code marks sites with RELBORG_FAULT("name"), which is a
// single relaxed atomic load when nothing is armed — cheap enough to keep
// compiled in.
#ifndef RELBORG_UTIL_FAULT_H_
#define RELBORG_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace relborg {

// Stable, ordered registry of injection sites. ArmFromSeed indexes into
// this list, so APPEND new sites at the end — reordering re-maps every
// recorded seed.
inline const std::vector<std::string>& FaultSites() {
  static const std::vector<std::string> kSites = {
      "stream/pre-commit-chunk",      // committer, before each ShadowDb range
      "stream/pre-publish-merge",     // applier, before maintaining an epoch
      "stream/pre-compute-range",     // compute thread, before speculation
      "stream/pre-checkpoint-write",  // applier, before snapshotting state
      "stream/pre-checkpoint-fsync",  // writer, tmp file written, not yet
                                      // flushed/renamed (torn checkpoint)
      "stream/quarantine-full",       // producer, bounded quarantine at
                                      // capacity (observation only)
  };
  return kSites;
}

class FaultInjector {
 public:
  static FaultInjector& Global();

  // Arm the injector: the next time `site` is reached for the `hit`-th
  // time (0-based), Fire returns true — once. Resets all hit counters so
  // each arming observes a fresh run.
  void Arm(const std::string& site, uint64_t hit);

  // Deterministic seed -> (site, hit) mapping over the registry:
  //   site = FaultSites()[seed % N], hit = (seed / N) % 4.
  // Sweeping seed over [0, 4N) covers every site at hits 0..3.
  void ArmFromSeed(uint64_t seed);

  void Disarm();

  // Record a hit at `site`; true iff this hit is the armed one. At most
  // one Fire per arming returns true.
  bool Fire(const char* site);

  // Hits recorded at `site` since the last Arm/Disarm (testing aid).
  uint64_t Hits(const std::string& site) const;

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  std::string armed_site_;
  uint64_t armed_hit_ = 0;
  bool fired_ = false;
  std::unordered_map<std::string, uint64_t> counts_;
};

// True iff the globally armed fault fires here, in which case the caller
// should fail its stage as if it had crashed at this point.
#define RELBORG_FAULT(site)                      \
  (::relborg::FaultInjector::Global().armed() && \
   ::relborg::FaultInjector::Global().Fire(site))

}  // namespace relborg

#endif  // RELBORG_UTIL_FAULT_H_
