// Lightweight CHECK macros. relborg does not use exceptions; invariant
// violations abort with a message, matching the style of other database
// engines (assertion failures are programming errors, not runtime errors).
#ifndef RELBORG_UTIL_CHECK_H_
#define RELBORG_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define RELBORG_CHECK(cond)                                                 \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,         \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define RELBORG_CHECK_MSG(cond, msg)                                        \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,    \
                   __LINE__, #cond, msg);                                   \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

// Checks that are cheap enough to keep in release builds guard public API
// misuse; use RELBORG_DCHECK for hot-loop invariants.
#ifdef NDEBUG
#define RELBORG_DCHECK(cond) ((void)0)
#else
#define RELBORG_DCHECK(cond) RELBORG_CHECK(cond)
#endif

#endif  // RELBORG_UTIL_CHECK_H_
