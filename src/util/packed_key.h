// Join keys and group-by keys are tuples of at most two categorical
// (int32) values, packed into a single uint64. A dedicated sentinel value
// marks "no key" / empty hash slots.
#ifndef RELBORG_UTIL_PACKED_KEY_H_
#define RELBORG_UTIL_PACKED_KEY_H_

#include <cstdint>

namespace relborg {

// Sentinel that can never be produced by PackKey of non-negative int32s
// (the high bit of each half would have to be set).
inline constexpr uint64_t kEmptyKey = ~0ull;

// The key of a view with no key attributes (e.g. the root view).
inline constexpr uint64_t kUnitKey = 0;

// Packs one categorical value. Values must be non-negative.
inline uint64_t PackKey1(int32_t a) { return static_cast<uint32_t>(a); }

// Packs two categorical values; order matters.
inline uint64_t PackKey2(int32_t a, int32_t b) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}

inline int32_t UnpackHigh(uint64_t key) {
  return static_cast<int32_t>(key >> 32);
}

inline int32_t UnpackLow(uint64_t key) {
  return static_cast<int32_t>(key & 0xFFFFFFFFull);
}

// SplitMix64 finalizer; used as the hash for packed keys.
inline uint64_t HashKey(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

}  // namespace relborg

#endif  // RELBORG_UTIL_PACKED_KEY_H_
