// Minimal byte-level serialization primitives for checkpointing.
//
// ByteSink appends fixed-width little-endian scalars to a growing buffer;
// ByteSource reads them back with a sticky failure flag instead of
// aborting — a truncated or corrupt checkpoint is OPERATIONAL input, so
// readers check `ok()` once at the end and surface a Status upstream.
//
// This header is deliberately dependency-free (no engine types) so that
// strategy classes in src/ivm/ can implement SaveCheckpoint/LoadCheckpoint
// against it without src/ivm/ depending on src/stream/ — the checkpoint
// FILE format (magic, checksum, framing) lives in src/stream/checkpoint.h.
//
// All multi-byte values are written little-endian via memcpy, which is
// byte-exact for doubles: the serialized image of a view is the image of
// its IEEE-754 bits, so restore reproduces results BIT-identically (FP
// summation order is never re-run at load time).
#ifndef RELBORG_UTIL_SERDE_H_
#define RELBORG_UTIL_SERDE_H_

#include <cstdint>
#include <cstring>
#include <vector>

namespace relborg {

class ByteSink {
 public:
  void U32(uint32_t v) { AppendRaw(&v, sizeof(v)); }
  void U64(uint64_t v) { AppendRaw(&v, sizeof(v)); }
  void F64(double v) { AppendRaw(&v, sizeof(v)); }
  void F64Span(const double* p, size_t n) { AppendRaw(p, n * sizeof(double)); }

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  size_t size() const { return bytes_.size(); }

 private:
  void AppendRaw(const void* p, size_t n) {
    const uint8_t* b = static_cast<const uint8_t*>(p);
    bytes_.insert(bytes_.end(), b, b + n);
  }

  std::vector<uint8_t> bytes_;
};

// Reads past the end set the sticky failure flag and yield zeros; callers
// check ok() once after the full read instead of testing every scalar.
class ByteSource {
 public:
  ByteSource(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint32_t U32() {
    uint32_t v = 0;
    ReadRaw(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    ReadRaw(&v, sizeof(v));
    return v;
  }
  double F64() {
    double v = 0;
    ReadRaw(&v, sizeof(v));
    return v;
  }
  void F64Span(double* p, size_t n) { ReadRaw(p, n * sizeof(double)); }

  bool ok() const { return !failed_; }
  // True iff every byte was consumed and no read overran.
  bool Exhausted() const { return !failed_ && pos_ == size_; }
  size_t remaining() const { return failed_ ? 0 : size_ - pos_; }

 private:
  void ReadRaw(void* p, size_t n) {
    if (failed_ || size_ - pos_ < n) {
      failed_ = true;
      std::memset(p, 0, n);
      return;
    }
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace relborg

#endif  // RELBORG_UTIL_SERDE_H_
