// Deterministic pseudo-random number generation for data generators,
// shuffling, and randomized (property) tests. All experiment inputs are
// reproducible given the seed.
#ifndef RELBORG_UTIL_RNG_H_
#define RELBORG_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace relborg {

// SplitMix64: tiny, fast, and statistically solid for data generation.
// Reference: Steele, Lea, Flood. "Fast splittable pseudorandom number
// generators", OOPSLA 2014.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed) {}

  // Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Uniform integer in [0, bound). bound must be positive.
  uint64_t Below(uint64_t bound) {
    RELBORG_DCHECK(bound > 0);
    return Next() % bound;
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    RELBORG_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double Uniform() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  // Standard normal via Box-Muller.
  double Gaussian() {
    double u1 = Uniform();
    double u2 = Uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  // Zipf-like skewed category id in [0, n): category 0 is most frequent.
  // Used to give generated datasets realistic value-frequency skew.
  int32_t SkewedCategory(int32_t n, double skew = 1.0) {
    RELBORG_DCHECK(n > 0);
    // Inverse-CDF approximation of Zipf via u^(1/(1-s)) shape; cheap and
    // good enough for workload generation.
    double u = Uniform();
    double x = std::pow(u, 1.0 + skew);
    int32_t c = static_cast<int32_t>(x * n);
    return c >= n ? n - 1 : c;
  }

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Below(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t state_;
};

}  // namespace relborg

#endif  // RELBORG_UTIL_RNG_H_
