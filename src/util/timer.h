// Wall-clock timing for the experiment harnesses.
#ifndef RELBORG_UTIL_TIMER_H_
#define RELBORG_UTIL_TIMER_H_

#include <chrono>

namespace relborg {

// Monotonic wall-clock stopwatch. Started on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Seconds elapsed since construction or last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace relborg

#endif  // RELBORG_UTIL_TIMER_H_
