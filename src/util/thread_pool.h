// Fixed-size thread pool used by the parallel execution mode of the
// aggregate engines (task parallelism across view groups, domain parallelism
// across partitions of a relation). Engines do not use the pool directly:
// they go through core/exec_policy.h's ExecContext, which either borrows a
// pool (ExecPolicy::pool) or owns one sized to the policy's thread count,
// and relies on ParallelFor being nest-safe for its two-level
// (view-group x partition) parallelism.
#ifndef RELBORG_UTIL_THREAD_POOL_H_
#define RELBORG_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace relborg {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task for asynchronous execution. Tasks should be short-lived:
  // a thread blocked in ParallelFor steals queued tasks and runs them inline,
  // so a long task can run on the stealing caller's thread and delay that
  // ParallelFor's return.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished.
  void Wait();

  // Runs fn(i) for i in [0, n) across the pool and waits for completion.
  // fn is also invoked on the calling thread. Safe to call from inside a
  // pool task (nested parallelism): completion is tracked per call, and the
  // waiting thread steals queued tasks instead of blocking.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // Default pool sized to the hardware; shared by engines that do not
  // receive an explicit pool.
  static ThreadPool& Default();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  int in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace relborg

#endif  // RELBORG_UTIL_THREAD_POOL_H_
