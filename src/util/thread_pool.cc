#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "util/check.h"

namespace relborg {

ThreadPool::ThreadPool(int num_threads) {
  RELBORG_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  std::atomic<size_t> next{0};
  // Helpers report completion through this local counter instead of the
  // pool-wide in-flight count: waiting on in_flight_ == 0 from inside a pool
  // task would wait on the caller's own ancestor task and deadlock.
  std::atomic<int> pending{0};
  auto worker = [&next, n, &fn] {
    for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) fn(i);
  };
  // No more helpers than remaining indices: tiny loops must not pay
  // pool-sized submission overhead (the calling thread covers one share).
  int helpers = static_cast<int>(
      std::min<size_t>(n - 1, static_cast<size_t>(num_threads())));
  for (int i = 0; i < helpers; ++i) {
    pending.fetch_add(1, std::memory_order_relaxed);
    Submit([this, &worker, &pending] {
      worker();
      if (pending.fetch_sub(1, std::memory_order_release) == 1) {
        // Lock before notifying so the decrement cannot slip into the gap
        // between the owner's predicate check and its sleep.
        std::lock_guard<std::mutex> lock(mu_);
        task_cv_.notify_all();
      }
    });
  }
  worker();  // The calling thread chips in too.
  // The queued tasks may be the helpers of a nested ParallelFor whose owner
  // occupies a worker thread, so steal work instead of blocking; when the
  // queue is empty, sleep on task_cv_ (woken by Submit or by the final
  // helper's decrement) rather than spinning.
  while (pending.load(std::memory_order_acquire) != 0) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this, &pending] {
        return !tasks_.empty() ||
               pending.load(std::memory_order_acquire) == 0;
      });
      if (tasks_.empty()) continue;  // all helpers finished
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    std::unique_lock<std::mutex> lock(mu_);
    if (--in_flight_ == 0) done_cv_.notify_all();
  }
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool* pool = new ThreadPool(
      std::max(1u, std::thread::hardware_concurrency()));
  return *pool;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace relborg
