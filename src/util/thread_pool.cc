#include "util/thread_pool.h"

#include <atomic>

#include "util/check.h"

namespace relborg {

ThreadPool::ThreadPool(int num_threads) {
  RELBORG_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  std::atomic<size_t> next{0};
  auto worker = [&] {
    for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) fn(i);
  };
  int helpers = num_threads();
  for (int i = 0; i < helpers; ++i) Submit(worker);
  worker();  // The calling thread chips in too.
  Wait();
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool* pool = new ThreadPool(
      std::max(1u, std::thread::hardware_concurrency()));
  return *pool;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace relborg
