// Lightweight error propagation for failure paths that must NOT abort.
//
// House style splits failures in two:
//  * PROGRAMMING ERRORS (broken invariants inside the library) abort via
//    RELBORG_CHECK — they indicate a bug, and no caller can meaningfully
//    recover from corrupted engine state.
//  * OPERATIONAL FAILURES (malformed input from an untrusted producer, a
//    missing or corrupt checkpoint file, a deadline expiring under
//    backpressure, a pipeline stage dying) are EXPECTED at runtime and
//    flow back to the caller as a Status / Result<T> — no exceptions, no
//    abort, no global errno.
//
// Status is a code plus a human-readable message; Result<T> carries a
// value on success and a Status otherwise. Both are cheap to move and
// deliberately minimal (no payloads, no stack traces) — the stream
// scheduler's failure model (docs/ARCHITECTURE.md, "Failure model &
// recovery") only ever needs to NAME what failed and where.
#ifndef RELBORG_UTIL_STATUS_H_
#define RELBORG_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace relborg {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,     // malformed input (validation rejections)
  kFailedPrecondition,  // API misuse that must not abort (Push after Finish)
  kDeadlineExceeded,    // bounded wait expired (TryPush)
  kResourceExhausted,   // bounded buffer full (quarantine overflow)
  kNotFound,            // no checkpoint file to restore from
  kDataLoss,            // corrupt/truncated checkpoint payload
  kAborted,             // pipeline stage failed (incl. injected faults)
  kUnavailable,         // I/O failure writing a checkpoint
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status DataLoss(std::string m) {
    return Status(StatusCode::kDataLoss, std::move(m));
  }
  static Status Aborted(std::string m) {
    return Status(StatusCode::kAborted, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// A value or the Status explaining its absence. Access to the value when
// !ok() is a programming error (RELBORG_CHECK).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    RELBORG_CHECK(!status_.ok());  // an OK Result must carry a value
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const {
    RELBORG_CHECK(value_.has_value());
    return *value_;
  }
  T& value() {
    RELBORG_CHECK(value_.has_value());
    return *value_;
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace relborg

#endif  // RELBORG_UTIL_STATUS_H_
