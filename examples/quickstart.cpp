// relborg quickstart: learn a ridge linear regression over a join without
// ever materializing it.
//
//   1. Define relations and the feature-extraction join query.
//   2. One factorized pass computes the covariance aggregate batch.
//   3. Gradient descent on that tiny matrix yields the model.
//
// Build: cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/covar_engine.h"
#include "core/feature_map.h"
#include "ml/linear_regression.h"
#include "query/join_tree.h"
#include "relational/catalog.h"
#include "util/rng.h"

using namespace relborg;

int main() {
  // --- 1. A two-table database: Sales(fact) |X| Products(dimension). ---
  Catalog db;
  Relation* products = db.AddRelation(
      "Products", Schema({{"pid", AttrType::kCategorical},
                          {"price", AttrType::kDouble},
                          {"rating", AttrType::kDouble}}));
  Relation* sales = db.AddRelation(
      "Sales", Schema({{"pid", AttrType::kCategorical},
                       {"discount", AttrType::kDouble},
                       {"units", AttrType::kDouble}}));

  Rng rng(7);
  const int kProducts = 100;
  std::vector<double> price(kProducts), rating(kProducts);
  for (int p = 0; p < kProducts; ++p) {
    price[p] = rng.Uniform(1, 50);
    rating[p] = rng.Uniform(1, 5);
    products->AppendRow({static_cast<double>(p), price[p], rating[p]});
  }
  for (int i = 0; i < 50000; ++i) {
    int p = static_cast<int>(rng.Below(kProducts));
    double discount = rng.Uniform(0, 0.5);
    // Ground truth: units = 10 - 0.1*price + 2*rating + 8*discount + noise.
    double units = 10 - 0.1 * price[p] + 2 * rating[p] + 8 * discount +
                   rng.Gaussian(0, 1);
    sales->AppendRow({static_cast<double>(p), discount, units});
  }

  // --- 2. The feature-extraction query: Sales |X|_pid Products. ---
  JoinQuery query;
  query.AddRelation(sales);
  query.AddRelation(products);
  query.AddJoin("Sales", "Products", {"pid"});

  FeatureMap features(query, {{"Products", "price"},
                              {"Products", "rating"},
                              {"Sales", "discount"},
                              {"Sales", "units"}});  // response last

  // --- 3. Factorized covariance batch + gradient descent. ---
  CovarMatrix covar = ComputeCovarMatrix(query.Root("Sales"), features);
  std::printf("join size (never materialized): %.0f tuples\n", covar.count());

  const int response = features.IndexOf("Sales", "units");
  LinearModel model = TrainRidgeGd(covar, response);
  for (size_t i = 0; i < model.weights.size(); ++i) {
    std::printf("  weight[%s] = %+.3f\n",
                features.name(model.feature_indices[i]).c_str(),
                model.weights[i]);
  }
  std::printf("  bias = %+.3f\n", model.bias);
  std::printf("training RMSE (from the covariance matrix alone): %.3f\n",
              std::sqrt(MseFromCovar(covar, response, model)));
  std::printf("expected ~ (price -0.1, rating +2, discount +8, bias ~10, "
              "rmse ~1)\n");
  return 0;
}
