// Classification over a join, two ways:
//  * a linear SVM whose hinge subgradients are additive-inequality
//    aggregates (Sec. 2.3) — the join is never enumerated during training,
//  * a naive Bayes classifier built from group-by counts (sparse tensors).
//
// Scenario: churn prediction — Accounts(region, activity, churn label)
// joined with RegionStats(region, support quality).
#include <cstdio>

#include "ml/naive_bayes.h"
#include "ml/svm.h"
#include "query/join_tree.h"
#include "relational/catalog.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace relborg;

int main() {
  Catalog db;
  Relation* regions = db.AddRelation(
      "RegionStats", Schema({{"region", AttrType::kCategorical},
                             {"support", AttrType::kDouble}}));
  Relation* accounts = db.AddRelation(
      "Accounts", Schema({{"region", AttrType::kCategorical},
                          {"activity", AttrType::kDouble},
                          {"tier", AttrType::kCategorical},
                          {"churn", AttrType::kCategorical}}));

  Rng rng(11);
  const int kRegions = 50;
  std::vector<double> support(kRegions);
  for (int r = 0; r < kRegions; ++r) {
    support[r] = rng.Uniform(0, 1);
    regions->AppendRow({static_cast<double>(r), support[r]});
  }
  for (int i = 0; i < 40000; ++i) {
    int r = static_cast<int>(rng.Below(kRegions));
    double activity = rng.Uniform(0, 1);
    // Churn when activity is low and regional support is poor.
    double margin = 1.2 * activity + 0.8 * support[r] - 0.9;
    int churn = margin + rng.Gaussian(0, 0.1) < 0 ? 1 : 0;
    accounts->AppendRow({static_cast<double>(r), activity,
                         static_cast<double>(activity > 0.5 ? 1 : 0),
                         static_cast<double>(churn)});
  }

  // --- SVM over inequality aggregates. ---
  SvmProblem problem;
  problem.r = accounts;
  problem.s = regions;
  problem.r_key_attr = 0;
  problem.s_key_attr = 0;
  problem.r_feature_attrs = {1};  // activity
  problem.s_feature_attrs = {1};  // support
  problem.label_attr = 3;

  SvmOptions opts;
  opts.iterations = 250;
  WallTimer t_svm;
  SvmTrainStats stats;
  SvmModel svm = TrainSvmOverJoin(problem, opts, &stats);
  std::printf("SVM over the join (%.0f tuples, never enumerated during "
              "training):\n", stats.join_size);
  std::printf("  %zu sorted aggregate batches in %.3f s; hinge loss %.4f\n",
              stats.aggregate_batches, t_svm.Seconds(),
              stats.final_hinge_loss);
  std::printf("  decision: %.2f*activity %+.2f*support %+.2f  "
              "(planted: churn iff 1.2*activity + 0.8*support < 0.9)\n",
              svm.r_weights[0], svm.s_weights[0], svm.bias);
  std::printf("  training accuracy: %.1f%%\n",
              100 * SvmJoinAccuracy(problem, svm));

  // --- Naive Bayes from group-by counts. ---
  JoinQuery query;
  query.AddRelation(accounts);
  query.AddRelation(regions);
  query.AddJoin("Accounts", "RegionStats", {"region"});
  WallTimer t_nb;
  NaiveBayesModel nb = NaiveBayesModel::Train(
      query.Root("Accounts"), {"Accounts", "churn"},
      {{"Accounts", "tier"}, {"Accounts", "region"}});
  double correct = 0;
  for (size_t row = 0; row < accounts->num_rows(); ++row) {
    int32_t pred = nb.Predict(
        {accounts->Cat(row, 2), accounts->Cat(row, 0)});
    if (pred == accounts->Cat(row, 3)) correct += 1;
  }
  std::printf("\nNaive Bayes from %zu group-by aggregates (%.3f s): "
              "training accuracy %.1f%%\n",
              nb.aggregates_evaluated(), t_nb.Seconds(),
              100 * correct / static_cast<double>(accounts->num_rows()));
  return 0;
}
