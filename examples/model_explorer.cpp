// Model exploration on TPC-DS: forward feature selection from one
// covariance matrix (Sec. 1.5), dependency structure of the categorical
// attributes via mutual information + Chow-Liu (Fig. 5's "mutual inf."
// workload), and the functional-dependency reparameterization of Sec. 3.2.
#include <cstdio>

#include "core/covar_engine.h"
#include "data/dataset.h"
#include "ml/fd_reparam.h"
#include "ml/model_selection.h"
#include "ml/mutual_information.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace relborg;

int main() {
  GenOptions gen;
  gen.scale = 0.01;
  Dataset tpcds = MakeTpcDs(gen);
  FeatureMap fm(tpcds.query, tpcds.features);
  RootedTree tree = tpcds.RootAtFact();
  const int response = fm.num_features() - 1;

  // --- Forward selection: every candidate model from one matrix. ---
  WallTimer t;
  CovarMatrix covar = ComputeCovarMatrix(tree, fm);
  ModelSelectionOptions sel_opts;
  sel_opts.max_features = 5;
  ModelSelectionResult sel = ForwardSelect(covar, response, sel_opts);
  std::printf("forward selection over %zu candidate models in %.3f s:\n",
              sel.models_evaluated, t.Seconds());
  for (const SelectionStep& s : sel.steps) {
    std::printf("  + %-32s training MSE %.4f\n",
                fm.name(s.added_feature).c_str(), s.mse);
  }

  // --- Chow-Liu tree over the categorical attributes. ---
  MutualInformationResult mi =
      ComputeMutualInformation(tree, tpcds.categoricals);
  std::printf("\nmutual information (%zu aggregates):\n", mi.aggregates);
  std::vector<ChowLiuEdge> chow_liu = BuildChowLiuTree(mi);
  for (const ChowLiuEdge& e : chow_liu) {
    std::printf("  %s.%s -- %s.%s   (MI %.4f nats)\n",
                mi.attrs[e.a].relation.c_str(), mi.attrs[e.a].attr.c_str(),
                mi.attrs[e.b].relation.c_str(), mi.attrs[e.b].attr.c_str(),
                e.mi);
  }

  // --- FD reparameterization (Sec. 3.2): train merged, recover split. ---
  // Suppose brand -> category holds (each brand belongs to one category).
  // A model with per-brand and per-category one-hot parameters can be
  // trained with merged per-brand parameters only and split afterwards.
  Rng rng(5);
  const int kBrands = 60;
  const int kCategories = 8;
  std::vector<int32_t> category_of(kBrands);
  std::vector<double> merged(kBrands);
  for (int b = 0; b < kBrands; ++b) {
    category_of[b] = static_cast<int32_t>(rng.Below(kCategories));
    merged[b] = rng.Gaussian(0, 1.0);  // stands in for trained parameters
  }
  FdReparamResult split =
      SplitMergedParameters(merged, category_of, kCategories);
  FdReparamResult naive;
  naive.theta_city = merged;
  naive.theta_country.assign(kCategories, 0.0);
  std::printf("\nFD reparameterization (brand -> category):\n");
  std::printf("  merged parameters: %d (instead of %d + %d)\n", kBrands,
              kBrands, kCategories);
  std::printf("  recovered split penalty %.3f vs naive split %.3f "
              "(predictions identical)\n",
              SplitPenalty(split), SplitPenalty(naive));
  return 0;
}
