// Inventory forecasting on the Retailer dataset (the paper's running
// example): trains both a ridge linear model and a CART regression tree
// over the five-relation join — all learning runs on factorized aggregates;
// the join is materialized only to evaluate accuracy at the end.
#include <cstdio>

#include "baseline/materializer.h"
#include "core/covar_engine.h"
#include "core/sparse_covar.h"
#include "data/dataset.h"
#include "ml/categorical_regression.h"
#include "ml/decision_tree.h"
#include "ml/linear_regression.h"
#include "util/timer.h"

using namespace relborg;

int main() {
  GenOptions gen;
  gen.scale = 0.02;
  Dataset retailer = MakeRetailer(gen);
  std::printf("Retailer: %zu rows across %d relations\n",
              retailer.catalog->TotalRows(), retailer.query.num_relations());

  FeatureMap fm(retailer.query, retailer.features);
  RootedTree tree = retailer.RootAtFact();
  const int response = fm.num_features() - 1;

  // --- Ridge linear regression from the covariance batch. ---
  WallTimer t_lin;
  CovarMatrix covar = ComputeCovarMatrix(tree, fm);
  LinearModel linear = TrainRidgeGd(covar, response);
  std::printf("\nlinear model (%.3f s, factorized):\n", t_lin.Seconds());
  for (size_t i = 0; i < linear.weights.size(); ++i) {
    std::printf("  %-28s %+.4f\n",
                fm.name(linear.feature_indices[i]).c_str(),
                linear.weights[i]);
  }

  // --- Ridge with categorical one-hot parameters (sparse tensors). ---
  WallTimer t_cat;
  SparseCovar sparse = ComputeSparseCovar(
      tree, fm, {{"Items", "category"}, {"Items", "categoryCluster"}});
  CategoricalTrainInfo cat_info;
  CategoricalModel cat_model = TrainRidgeCategorical(
      sparse, response, CategoricalRidgeOptions{}, &cat_info);
  std::printf("\ncategorical ridge: %zu parameters (incl. one-hot blocks), "
              "%zu aggregates, %d CD sweeps (%.3f s, factorized)\n",
              cat_info.num_parameters, sparse.num_aggregates(),
              cat_info.sweeps, t_cat.Seconds());

  // --- CART regression tree over decision-node aggregate batches. ---
  std::vector<TreeFeature> tree_features;
  for (size_t f = 0; f + 1 < retailer.features.size(); ++f) {
    tree_features.push_back({retailer.features[f].relation,
                             retailer.features[f].attr, false});
  }
  tree_features.push_back({"Items", "category", true});
  DecisionTreeOptions opts;
  opts.max_depth = 4;
  WallTimer t_tree;
  DecisionTree cart = DecisionTree::TrainRegression(
      retailer.query, retailer.response, tree_features, opts);
  std::printf("\nregression tree: %d nodes, depth %d, %zu aggregates "
              "evaluated (%.3f s, factorized)\n",
              cart.num_nodes(), cart.depth(), cart.aggregates_evaluated(),
              t_tree.Seconds());

  // --- Accuracy on the (now materialized) join. ---
  std::vector<ColumnRef> cols;
  for (const TreeFeature& tf : tree_features) {
    cols.push_back({tf.relation, tf.attr});
  }
  cols.push_back({retailer.response.relation, retailer.response.attr});
  DataMatrix eval = MaterializeJoin(tree, cols);
  int y_col = eval.num_cols() - 1;

  // Columns for the linear model follow fm order; build that view too.
  DataMatrix lin_eval = MaterializeJoin(tree, fm);
  double mean = 0;
  for (size_t r = 0; r < eval.num_rows(); ++r) mean += eval.At(r, y_col);
  mean /= static_cast<double>(eval.num_rows());
  double var = 0;
  for (size_t r = 0; r < eval.num_rows(); ++r) {
    var += (eval.At(r, y_col) - mean) * (eval.At(r, y_col) - mean);
  }
  var /= static_cast<double>(eval.num_rows());

  std::printf("\naccuracy over %zu join tuples (response variance %.3f):\n",
              eval.num_rows(), var);
  std::printf("  linear ridge   RMSE %.3f\n",
              Rmse(linear, lin_eval, response));
  std::printf("  regression tree RMSE %.3f\n",
              std::sqrt(cart.Mse(eval, y_col)));
  return 0;
}
