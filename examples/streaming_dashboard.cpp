// "Keeping models fresh" (Sec. 1.5 of the paper): F-IVM maintains the
// covariance matrix of the Favorita join under a live insert stream; after
// every few batches the linear model is refreshed by resuming gradient
// descent from the previous parameters (warm start) — milliseconds per
// refresh instead of retraining from scratch over a data matrix.
#include <cstdio>

#include "core/covar_engine.h"
#include "data/dataset.h"
#include "ivm/ivm.h"
#include "ivm/update_stream.h"
#include "ml/linear_regression.h"
#include "util/timer.h"

using namespace relborg;

int main() {
  GenOptions gen;
  gen.scale = 0.02;
  Dataset favorita = MakeFavorita(gen);

  ShadowDb shadow(favorita.query, favorita.query.IndexOf(favorita.fact));
  FeatureMap fm(shadow.query(), favorita.features);
  CovarFivm fivm(&shadow, &fm);
  const int response = fm.num_features() - 1;

  UpdateStreamOptions stream_opts;
  stream_opts.batch_size = 2000;
  std::vector<UpdateBatch> stream = BuildInsertStream(favorita.query,
                                                      stream_opts);
  std::printf("streaming %zu tuples into an empty Favorita database...\n",
              StreamRowCount(stream));
  std::printf("%10s %12s %14s %14s %12s\n", "batch", "db tuples",
              "maintain (ms)", "refresh (ms)", "model RMSE");

  std::vector<double> warm;
  size_t applied = 0;
  size_t batch_no = 0;
  double maintain_ms = 0;
  for (const UpdateBatch& batch : stream) {
    WallTimer t_maintain;
    size_t first = shadow.AppendRows(batch.node, batch.rows);
    fivm.ApplyBatch(batch.node, first, batch.rows.size());
    maintain_ms += t_maintain.Millis();
    applied += batch.rows.size();
    ++batch_no;

    if (batch_no % 8 == 0 || batch_no == stream.size()) {
      CovarMatrix covar = fivm.Current();
      if (covar.count() < 100) continue;
      WallTimer t_refresh;
      RidgeOptions opts;
      opts.warm_start = warm;  // resume convergence (Sec. 1.5)
      TrainInfo info;
      LinearModel model = TrainRidgeGd(covar, response, opts, {}, &info);
      warm = model.weights;
      std::printf("%10zu %12.0f %14.2f %14.2f %12.4f   (%d GD iters)\n",
                  batch_no, covar.count(), maintain_ms, t_refresh.Millis(),
                  std::sqrt(MseFromCovar(covar, response, model)),
                  info.iterations);
      maintain_ms = 0;
    }
  }
  std::printf("\nThe model stays fresh at millisecond refresh latency while "
              "the database grows — no data matrix is ever rebuilt.\n");
  return 0;
}
