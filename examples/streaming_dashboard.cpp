// "Keeping models fresh" (Sec. 1.5 of the paper), served live: F-IVM
// maintains the covariance matrix of the Favorita join under an insert
// stream running through the async pipeline (stream/stream_scheduler.h),
// while a dashboard thread queries it CONCURRENTLY through the snapshot
// server (serve/snapshot_server.h) — each refresh opens a read
// transaction pinned at a committed epoch horizon, trains the ridge model
// by resuming gradient descent from the previous weights (the server's
// warm-start cache), and never stops the pipeline. Contrast with the old
// shape of this example, which interleaved ingest and stop-the-world
// Current() reads on one thread.
#include <atomic>
#include <cmath>
#include <cstdio>
#include <thread>

#include "core/covar_engine.h"
#include "data/dataset.h"
#include "ivm/ivm.h"
#include "ivm/update_stream.h"
#include "ml/linear_regression.h"
#include "serve/snapshot_server.h"
#include "stream/stream_scheduler.h"
#include "util/timer.h"

using namespace relborg;

int main() {
  GenOptions gen;
  gen.scale = 0.02;
  Dataset favorita = MakeFavorita(gen);

  ShadowDb shadow(favorita.query, favorita.query.IndexOf(favorita.fact));
  FeatureMap fm(shadow.query(), favorita.features);
  CovarFivm fivm(&shadow, &fm);
  const int response = fm.num_features() - 1;

  UpdateStreamOptions stream_opts;
  stream_opts.batch_size = 2000;
  std::vector<UpdateBatch> stream = BuildInsertStream(favorita.query,
                                                      stream_opts);
  std::printf("streaming %zu tuples into an empty Favorita database, "
              "serving models live from the pipeline...\n",
              StreamRowCount(stream));
  std::printf("%10s %12s %14s %12s\n", "epoch", "db tuples", "refresh (ms)",
              "model RMSE");

  {
    StreamScheduler<CovarFivm> scheduler(&shadow, &fivm);
    SnapshotServer<CovarFivm> server(&scheduler, &shadow, &fivm);
    std::atomic<bool> done{false};

    // The dashboard: a closed-loop client refreshing the model from
    // whatever horizon the server has published, while ingest runs.
    std::thread dashboard([&] {
      uint64_t last_horizon = 0;
      bool final_pass = false;
      while (!final_pass) {
        final_pass = done.load(std::memory_order_acquire);
        auto txn = server.BeginSnapshot();
        const uint64_t horizon = txn.horizon_epochs();
        if (horizon == last_horizon && !final_pass) {
          server.EndSnapshot(&txn);
          std::this_thread::yield();
          continue;
        }
        last_horizon = horizon;
        CovarMatrix covar = server.Covar(txn);
        if (covar.count() >= 100) {
          WallTimer t_refresh;
          LinearModel model = server.TrainModel(txn, response);
          std::printf("%10llu %12.0f %14.2f %12.4f\n",
                      static_cast<unsigned long long>(horizon), covar.count(),
                      t_refresh.Millis(),
                      std::sqrt(MseFromCovar(covar, response, model)));
        }
        server.EndSnapshot(&txn);
      }
    });

    for (const UpdateBatch& batch : stream) scheduler.Push(batch);
    scheduler.Finish();
    done.store(true, std::memory_order_release);
    dashboard.join();
  }

  std::printf("\nThe model stays fresh at millisecond refresh latency while "
              "tuples keep streaming — reads are snapshot-consistent at an "
              "epoch horizon and never pause ingestion.\n");
  return 0;
}
