// Customer/business segmentation on the Yelp dataset: k-means over the
// Reviews |X| Businesses |X| Users join via the relational coreset
// (Rk-means), plus PCA of the review features from the same covariance
// matrix — neither ever materializes the join for training.
#include <cstdio>

#include "baseline/materializer.h"
#include "core/covar_engine.h"
#include "data/dataset.h"
#include "ml/kmeans.h"
#include "ml/pca.h"
#include "util/timer.h"

using namespace relborg;

int main() {
  GenOptions gen;
  gen.scale = 0.02;
  Dataset yelp = MakeYelp(gen);
  FeatureMap fm(yelp.query, yelp.features);
  RootedTree tree = yelp.RootAtFact();

  // --- Segmentation: Rk-means over the join. ---
  KMeansOptions opts;
  opts.k = 4;
  opts.per_relation_k = 8;
  WallTimer t_rk;
  KMeansResult segments = RelationalKMeans(tree, fm, opts);
  std::printf("Rk-means: %d segments from a %zu-point coreset in %.3f s\n",
              static_cast<int>(segments.centroids.size()),
              segments.coreset_size, t_rk.Seconds());
  for (size_t c = 0; c < segments.centroids.size(); ++c) {
    std::printf("  segment %zu:", c);
    // Print the three most telling dimensions.
    std::printf(" bstars=%.2f ustars=%.2f fans=%.0f stars=%.2f\n",
                segments.centroids[c][fm.IndexOf("Businesses", "bstars")],
                segments.centroids[c][fm.IndexOf("Users", "ustars")],
                segments.centroids[c][fm.IndexOf("Users", "fans")],
                segments.centroids[c][fm.IndexOf("Reviews", "stars")]);
  }

  // Sanity versus Lloyd's over the materialized join.
  DataMatrix matrix = MaterializeJoin(tree, fm);
  WeightedPoints full;
  full.dims = matrix.num_cols();
  if (matrix.num_rows() > 0) {
    full.coords.assign(matrix.Row(0),
                       matrix.Row(0) + matrix.num_rows() * full.dims);
  }
  WallTimer t_lloyd;
  KMeansResult base = LloydKMeans(full, opts);
  std::printf("coreset objective / full-join Lloyd objective: %.3f "
              "(Lloyd over %zu tuples took %.3f s)\n",
              KMeansObjective(full, segments.centroids) /
                  std::max(1e-12, base.objective),
              matrix.num_rows(), t_lloyd.Seconds());

  // --- PCA from the same covariance matrix. ---
  CovarMatrix covar = ComputeCovarMatrix(tree, fm);
  PcaResult pca = ComputePca(covar, 3);
  std::printf("\nPCA over the join (top %zu components):\n",
              pca.components.size());
  for (size_t c = 0; c < pca.components.size(); ++c) {
    std::printf("  PC%zu explains %.1f%% cumulative; loadings:", c + 1,
                100 * pca.explained_ratio[c]);
    for (int f = 0; f < fm.num_features(); ++f) {
      if (std::abs(pca.components[c][f]) > 0.3) {
        std::printf(" %s=%+.2f", fm.name(f).c_str(), pca.components[c][f]);
      }
    }
    std::printf("\n");
  }
  return 0;
}
