#!/usr/bin/env bash
# Continuous-integration driver: configure -> build -> ctest in the two
# supported configurations.
#
#   ./ci.sh            # Release (warnings-as-errors) + ASan/UBSan
#   ./ci.sh release    # just the Release leg
#   ./ci.sh asan       # just the sanitizer leg
#
# Both legs run the full CTest suite including the `bench-smoke` label,
# which executes every bench/ binary at tiny scale (RELBORG_SCALE=0.05).
set -euo pipefail
cd "$(dirname "$0")"

JOBS=${JOBS:-$(nproc)}
MODE=${1:-all}

run_leg() {
  local name=$1
  shift
  local dir="build-ci-${name}"
  echo "==== [${name}] configure"
  cmake -B "${dir}" -S . "$@"
  echo "==== [${name}] build"
  cmake --build "${dir}" -j "${JOBS}"
  echo "==== [${name}] test"
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
}

if [[ "${MODE}" == "all" || "${MODE}" == "release" ]]; then
  # -march=native is off in CI so binaries are portable across runners.
  run_leg release \
    -DCMAKE_BUILD_TYPE=Release \
    -DRELBORG_WERROR=ON \
    -DRELBORG_NATIVE=OFF
fi

if [[ "${MODE}" == "all" || "${MODE}" == "asan" ]]; then
  run_leg asan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DRELBORG_WERROR=ON \
    -DRELBORG_SANITIZE=ON
fi

echo "==== ci.sh: all requested legs green"
