#!/usr/bin/env bash
# Continuous-integration driver: configure -> build -> ctest in the
# supported configurations.
#
#   ./ci.sh            # Release (warnings-as-errors) + ASan/UBSan (+ TSan)
#   ./ci.sh release    # just the Release leg (+ fault-seed sweep over the
#                      # crash-recovery differential suite)
#   ./ci.sh asan       # the sanitizer leg: ASan/UBSan suite + fault-seed
#                      # sweep + a TSan sibling config running the
#                      # parallel-path, quarantine/watchdog, and pinned
#                      # fault-seed tests
#   ./ci.sh bench      # Release bench leg: ctest -L bench-smoke with the
#                      # JSON sink on, merged into BENCH_ci.json
#
# The release and asan legs run the full CTest suite including the
# `bench-smoke` label, which executes every bench/ binary at tiny scale
# (RELBORG_SCALE=0.05).
#
# Env knobs:
#   JOBS=N                       parallel build/test jobs (default: nproc)
#   RELBORG_REQUIRE_BENCHMARK=1  fail if CMake configure warns that Google
#                                Benchmark is missing (CI sets this so the
#                                micro_* targets can never silently vanish
#                                from the recorded trajectory)
set -euo pipefail
cd "$(dirname "$0")"

JOBS=${JOBS:-$(nproc)}
MODE=${1:-all}

# ccache cuts warm CI configure+build times dramatically; harmless when
# absent locally.
LAUNCHER_ARGS=()
if command -v ccache >/dev/null 2>&1; then
  LAUNCHER_ARGS=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

check_configure_log() {
  local log=$1
  if [[ "${RELBORG_REQUIRE_BENCHMARK:-0}" == "1" ]] &&
     grep -q "Google Benchmark not found" "${log}"; then
    echo "ci.sh: Google Benchmark is missing but RELBORG_REQUIRE_BENCHMARK=1;" \
         "refusing to silently skip the micro_* targets" >&2
    exit 1
  fi
}

configure() {
  local dir=$1
  shift
  mkdir -p "${dir}"
  cmake -B "${dir}" -S . "${LAUNCHER_ARGS[@]}" "$@" 2>&1 |
    tee "${dir}/configure.log"
  check_configure_log "${dir}/configure.log"
}

run_leg() {
  local name=$1
  shift
  local dir="build-ci-${name}"
  echo "==== [${name}] configure"
  configure "${dir}" "$@"
  echo "==== [${name}] build"
  cmake --build "${dir}" -j "${JOBS}"
  echo "==== [${name}] test"
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
}

fault_sweep() {
  # Crash-recovery differential under pinned fault seeds. The `fault`
  # label's suites sweep every (site, hit) pair internally when
  # RELBORG_FAULT_SEED is unset — that already ran as part of the full
  # suite above — so this sweep pins one seed per run, proving the env
  # knob selects single faults reproducibly (the debugging workflow for a
  # failed differential). Seeds 0..5 hit each registered fault site once.
  local name=$1 dir=$2
  for seed in 0 1 2 3 4 5; do
    echo "==== [${name}] fault-seed sweep: RELBORG_FAULT_SEED=${seed}"
    RELBORG_FAULT_SEED=${seed} ctest --test-dir "${dir}" \
      --output-on-failure -j "${JOBS}" --no-tests=error -L fault
  done
}

# Documentation gates (every mode; they cost nothing). The public serving
# surface must stay documented: both docs files exist, and every public
# header under src/serve/ opens with a file-level comment.
echo "==== [docs] check documentation presence"
for doc in docs/ARCHITECTURE.md docs/API.md docs/OBSERVABILITY.md; do
  if [[ ! -s "${doc}" ]]; then
    echo "ci.sh: ${doc} is missing or empty" >&2
    exit 1
  fi
done
for hdr in src/serve/*.h; do
  if [[ "$(head -c 2 "${hdr}")" != "//" ]]; then
    echo "ci.sh: public header ${hdr} lacks a file-level comment" \
         "(line 1 must start with //)" >&2
    exit 1
  fi
done

if [[ "${MODE}" == "all" || "${MODE}" == "release" ]]; then
  # -march=native is off in CI so binaries are portable across runners.
  run_leg release \
    -DCMAKE_BUILD_TYPE=Release \
    -DRELBORG_WERROR=ON \
    -DRELBORG_NATIVE=OFF
  fault_sweep release build-ci-release
fi

if [[ "${MODE}" == "all" || "${MODE}" == "asan" ]]; then
  run_leg asan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DRELBORG_WERROR=ON \
    -DRELBORG_SANITIZE=ON
  fault_sweep asan build-ci-asan

  # TSan sibling config: ASan and TSan cannot combine, so the parallel
  # exec paths (thread pool, ExecPolicy thread sweeps) get their own
  # build; only the thread-exercising suites run, to keep the leg cheap.
  echo "==== [tsan] configure"
  configure build-ci-tsan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DRELBORG_WERROR=ON \
    -DRELBORG_SANITIZE_THREAD=ON \
    -DRELBORG_BUILD_BENCH=OFF \
    -DRELBORG_BUILD_EXAMPLES=OFF
  echo "==== [tsan] build"
  cmake --build build-ci-tsan -j "${JOBS}" \
    --target covar_arena_test covar_arena_snapshot_test exec_policy_test \
             obs_test robustness_test serve_snapshot_test shard_test \
             stream_checkpoint_test stream_scheduler_test \
             stream_stress_test thread_pool_test util_test
  echo "==== [tsan] test (parallel paths)"
  # --no-tests=error: a renamed suite or broken discovery must fail the
  # leg, not let it pass green having verified nothing. StreamIngress and
  # StreamBackpressure cover the quarantine, TryPush-deadline, and
  # watchdog paths, whose producer/applier/watchdog interplay is exactly
  # what TSan exists to check.
  TSAN_OPTIONS="halt_on_error=1" ctest --test-dir build-ci-tsan \
    --output-on-failure -j "${JOBS}" --no-tests=error \
    -R 'ExecPolicy|ThreadSweep|IndependentViewGroups|ThreadPool|CovarArena|StreamScheduler|StagedIngest|StreamIngress|StreamBackpressure|ObsMetrics|ObsTrace|ObsStream'
  echo "==== [tsan] test (stream stress suite)"
  # The randomized differential stress suite: watermark-overlapped commits
  # racing real maintenance under TSan, bit-identity checked per case.
  TSAN_OPTIONS="halt_on_error=1" ctest --test-dir build-ci-tsan \
    --output-on-failure -j "${JOBS}" --no-tests=error -L stream-stress
  echo "==== [tsan] test (crash-recovery differential, pinned seeds)"
  # The full internal (site, hit) sweep is too slow at TSan's ~10x tax;
  # two pinned seeds — mid-epoch publish fault (1) and checkpoint-write
  # fault (3) — exercise the kill/restore/replay protocol's cross-thread
  # handoff under TSan without re-running the whole matrix.
  for seed in 1 3; do
    TSAN_OPTIONS="halt_on_error=1" RELBORG_FAULT_SEED=${seed} \
      ctest --test-dir build-ci-tsan \
      --output-on-failure -j "${JOBS}" --no-tests=error -L fault
  done
fi

if [[ "${MODE}" == "all" || "${MODE}" == "bench" ]]; then
  dir=build-ci-bench
  echo "==== [bench] configure"
  configure "${dir}" \
    -DCMAKE_BUILD_TYPE=Release \
    -DRELBORG_WERROR=ON \
    -DRELBORG_NATIVE=OFF \
    -DRELBORG_BUILD_EXAMPLES=OFF
  echo "==== [bench] build"
  cmake --build "${dir}" -j "${JOBS}"
  echo "==== [bench] run bench smokes (JSON sink on)"
  # The smokes' CTest ENVIRONMENT points each harness at its own file
  # under ${dir}/bench-json/, so parallel execution cannot interleave.
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" \
    --no-tests=error -L bench-smoke
  echo "==== [bench] fig4_left thread sweep at default scale"
  # The smokes run at RELBORG_SCALE=0.05, far too small for parallel
  # headroom; the speedup acceptance gate is measured at default scale.
  RELBORG_BENCH_JSON="${dir}/bench-json/fig4_left_default_scale.jsonl" \
    "${dir}/bench/fig4_left_batch_speedup" > "${dir}/fig4_left_default.log"
  echo "==== [bench] fig4_right at second scale point (0.5)"
  # Second scale point for the trajectory: the smoke scale (0.05) streams
  # only a few thousand tuples, far too few to say anything about the
  # async scheduler; 0.5 runs a ~100k-tuple stream standalone (not under
  # a parallel ctest), so the async-vs-serial ratio is meaningful.
  # RELBORG_THREADS is pinned to 4 so the records carry a host-independent
  # {threads} identity: the async gate below and the committed baselines
  # (recorded with the same pin) match it on any runner size.
  # --epoch-rows-sweep additionally records the epoch-size tradeoff curve
  # of the watermark-overlapped async path into the trajectory.
  RELBORG_SCALE=0.5 RELBORG_THREADS=4 \
    RELBORG_BENCH_JSON="${dir}/bench-json/fig4_right_scale05.jsonl" \
    "${dir}/bench/fig4_right_ivm_throughput" --epoch-rows-sweep \
    > "${dir}/fig4_right_scale05.log"
  echo "==== [bench] obs overhead + traced-pipeline validation (0.5)"
  # Traced vs untraced ingest at the meaningful 0.5 scale (the smoke-scale
  # run is ~10ms of pipeline startup, far below the timing noise floor).
  # The harness writes the traced run's Chrome trace, and
  # tools/trace_summary.py both schema-validates it and demands spans from
  # every pipeline stage thread — a real StreamScheduler run, exported,
  # parsed, and summarized on every CI bench leg.
  RELBORG_SCALE=0.5 RELBORG_THREADS=4 \
    RELBORG_BENCH_JSON="${dir}/bench-json/fig_obs_overhead_scale05.jsonl" \
    "${dir}/bench/fig_obs_overhead" --reps 5 \
    --trace-out "${dir}/obs_trace.json" > "${dir}/fig_obs_overhead.log"
  python3 tools/trace_summary.py "${dir}/obs_trace.json" \
    --expect-thread assemble --expect-thread commit \
    --expect-thread compute --expect-thread apply
  echo "==== [bench] shard scaling at second scale point (0.5)"
  # Sharded-vs-unsharded pipeline scaling at a stream size where the fleet
  # amortizes its startup (the smoke scale is a few thousand tuples). The
  # harness pins intra-op threads to 1 itself, so no RELBORG_THREADS pin
  # here — the ratio's identity is the shard count, carried in {threads}.
  RELBORG_SCALE=0.5 \
    RELBORG_BENCH_JSON="${dir}/bench-json/fig_shard_scaling_scale05.jsonl" \
    "${dir}/bench/fig_shard_scaling" > "${dir}/fig_shard_scaling.log"
  echo "==== [bench] merge trajectory"
  python3 tools/merge_bench_json.py "${dir}/bench-json" \
    -o "${dir}/BENCH_ci.json" \
    --label "ci-$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
  echo "==== [bench] diff against committed baseline"
  # >10% regressions of matching records against the newest committed
  # BENCH_PR*.json are WARNINGS (single-shot timings on shared runners are
  # too noisy for a tight hard gate); >25% regressions FAIL the leg —
  # except observability metrics that stay warn-only: worst-case latency
  # (one scheduler preemption swings a single-shot max arbitrarily) and
  # the async scheduler records, whose smoke-scale instances are all
  # pipeline startup; the meaningful 0.5-scale async ratio is enforced by
  # the dedicated >= 1.3x gate below instead. Exit code 2 means the files
  # share no records (e.g. after a metric rename) — that stays a warning,
  # not a failure.
  baseline=$(ls BENCH_PR*.json 2>/dev/null | sort -V | tail -n 1)
  if [[ -n "${baseline}" ]]; then
    rc=0
    # ^obs_ stays warn-only here: the <= 2% overhead bar is enforced by
    # the dedicated gate below at 0.5 scale, where it is measurable.
    # fivm_sharded*/shard_merge_seconds stay warn-only too: the ratios are
    # enforced by the dedicated >= 1.3x gate below at 0.5 scale, and the
    # sub-microsecond merge timings sit below the single-shot noise floor.
    python3 tools/diff_bench_json.py --fail-threshold 0.25 \
      --fail-exclude '_async_|_latency_max_ms$|^obs_|_sharded|^shard_merge_' \
      "${baseline}" "${dir}/BENCH_ci.json" || rc=$?
    if [[ "${rc}" -eq 2 ]]; then
      echo "ci.sh: bench diff could not compare baselines (non-fatal)" >&2
    elif [[ "${rc}" -eq 3 ]]; then
      # rc 3 = broken input (missing / truncated / unparseable JSON): the
      # bench leg produced garbage, which must fail loudly rather than
      # masquerade as either "no regressions" or a perf verdict.
      echo "ci.sh: bench diff input is missing or corrupt — the bench leg" \
           "did not produce a valid BENCH_ci.json" >&2
      exit "${rc}"
    elif [[ "${rc}" -ne 0 ]]; then
      echo "ci.sh: bench diff found regressions beyond the fail threshold" >&2
      exit "${rc}"
    fi
  else
    echo "ci.sh: no committed BENCH_PR*.json baseline; skipping diff" >&2
  fi
  echo "==== [bench] check 4-thread speedup gate"
  # >= 1.5x on the best dataset at default scale with 4 threads (the
  # engines are bit-identical across thread counts, so this gate is pure
  # performance). Skipped with a loud note on runners with < 4 CPUs,
  # where the bar is physically unreachable.
  python3 - "${dir}/BENCH_ci.json" <<'EOF'
import json, os, sys
d = json.load(open(sys.argv[1]))
sweep = [r["value"] for r in d["records"]
         if r["metric"].startswith("covar_parallel_speedup/")
         and r["threads"] == 4 and r.get("scale") == 1]
if not sweep:
    sys.exit("bench gate: no default-scale 4-thread sweep records found")
best = max(sweep)
cpus = os.cpu_count() or 1
print(f"bench gate: best 4-thread covar speedup {best:.2f}x on {cpus} CPUs")
if cpus < 4:
    print("bench gate: <4 CPUs, speedup bar not enforceable on this host")
elif best < 1.5:
    sys.exit(f"bench gate: best 4-thread speedup {best:.2f}x < 1.5x")
# Async stream scheduler gate: the 0.5-scale fig4_right run must show the
# watermark-overlapped F-IVM path >= 1.55x over the serial path at 4
# threads (raised from 1.5x now that the speculative compute stage
# pipelines epoch N+1's delta computation over epoch N's propagation; the
# smoke-scale records are excluded — a few-thousand-tuple stream is all
# pipeline startup).
async_ratio = [r["value"] for r in d["records"]
               if r["metric"] == "fivm_async_over_serial"
               and r["threads"] == 4 and r.get("scale") == 0.5]
if async_ratio:
    best_async = max(async_ratio)
    print(f"bench gate: fivm async/serial stream throughput "
          f"{best_async:.2f}x at scale 0.5")
    if cpus < 4:
        print("bench gate: <4 CPUs, async bar not enforceable on this host")
    elif best_async < 1.55:
        sys.exit(f"bench gate: async/serial {best_async:.2f}x < 1.55x")
elif cpus >= 4:
    sys.exit("bench gate: no 4-thread fivm_async_over_serial record at "
             "scale 0.5")
else:
    print("bench gate: <4 CPUs, no enforceable async record (ok)")
# Sharded pipeline gate: at 0.5 scale a 4-shard F-IVM fleet must ingest
# >= 1.3x the unsharded pipeline (intra-op threads pinned to 1 by the
# harness, so the ratio is pure pipeline-level scaling). Like the async
# gate, the bar needs 4 real CPUs to be physically reachable.
shard_ratio = [r["value"] for r in d["records"]
               if r["metric"] == "fivm_sharded4_over_unsharded"
               and r.get("scale") == 0.5]
if shard_ratio:
    best_shard = max(shard_ratio)
    print(f"bench gate: fivm 4-shard/unsharded ingest throughput "
          f"{best_shard:.2f}x at scale 0.5")
    if cpus < 4:
        print("bench gate: <4 CPUs, shard bar not enforceable on this host")
    elif best_shard < 1.3:
        sys.exit(f"bench gate: 4-shard/unsharded {best_shard:.2f}x < 1.3x")
elif cpus >= 4:
    sys.exit("bench gate: no fivm_sharded4_over_unsharded record at "
             "scale 0.5")
else:
    print("bench gate: <4 CPUs, no enforceable shard record (ok)")
# Observability overhead gate: tracing a real ingest run must cost <= 2%
# throughput (best-of-N traced over best-of-N untraced at 0.5 scale; the
# harness already checked the two modes bit-identical before reporting).
obs_ratio = [r["value"] for r in d["records"]
             if r["metric"] == "obs_traced_over_untraced"
             and r.get("scale") == 0.5]
if not obs_ratio:
    sys.exit("bench gate: no obs_traced_over_untraced record at scale 0.5")
best_obs = max(obs_ratio)
print(f"bench gate: traced/untraced ingest throughput {best_obs:.4f}x")
if best_obs < 0.98:
    sys.exit(f"bench gate: tracing overhead {(1 - best_obs):.1%} > 2% "
             f"(traced/untraced {best_obs:.4f}x < 0.98x)")
EOF
fi

echo "==== ci.sh: all requested legs green"
